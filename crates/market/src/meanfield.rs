//! Mean-field analysis (paper §5.1.1, Theorem 5.1).
//!
//! For the `L = λ·χ·τ²` loss the exact inner equilibrium couples all `m`
//! sellers; the mean-field method decouples them through the weighted mean
//! state `τ̄ = Σ ω_i·τ_i / m` (Eq. 21), yielding `τ_i* = 2p^D/(3λ_i)`
//! (Eq. 23). Theorem 5.1 bounds the error of the weighted means after the
//! `ω`-rescaling `ω_i/λ_i ≤ 1/(p^D·m²)`:
//!
//! ```text
//! −1/(6m²)  <  τ̄^DD − τ̄^MF  <  1/m − 2/(3m²)
//! ```

use crate::error::{MarketError, Result};
use crate::params::MarketParams;
use crate::stage3::{tau_direct_linear_chi, tau_mean_field};
use serde::{Deserialize, Serialize};
use share_valuation::weights::rescale_for_mean_field;

/// The mean-field state `τ̄ = Σ ω_i·τ_i / m` (paper Eq. 21).
///
/// # Errors
/// [`MarketError::SellerCountMismatch`] when `weights` and `tau` disagree
/// in length. An earlier version zip-truncated silently, so a caller that
/// passed a short strategy vector got a plausible-looking but wrong τ̄.
pub fn mean_field_state(weights: &[f64], tau: &[f64]) -> Result<f64> {
    if weights.len() != tau.len() {
        return Err(MarketError::SellerCountMismatch {
            expected: weights.len(),
            got: tau.len(),
        });
    }
    let m = weights.len().max(1) as f64;
    Ok(weights.iter().zip(tau).map(|(w, t)| w * t).sum::<f64>() / m)
}

/// Theorem 5.1 interval `(lower, upper)` for `τ̄^DD − τ̄^MF` at seller count
/// `m`.
pub fn theorem51_bounds(m: usize) -> (f64, f64) {
    let mf = m as f64;
    (-1.0 / (6.0 * mf * mf), 1.0 / mf - 2.0 / (3.0 * mf * mf))
}

/// Outcome of one mean-field error measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanFieldError {
    /// Seller count.
    pub m: usize,
    /// Weighted mean of the exact (direct-derivation) equilibrium.
    pub tau_bar_dd: f64,
    /// Weighted mean of the mean-field approximation.
    pub tau_bar_mf: f64,
    /// The signed error `τ̄^DD − τ̄^MF`.
    pub error: f64,
    /// Theorem 5.1 lower bound.
    pub lower_bound: f64,
    /// Theorem 5.1 upper bound.
    pub upper_bound: f64,
    /// Max per-seller strategy gap `max_i |τ_i^DD − τ_i^MF|`.
    pub max_strategy_gap: f64,
}

impl MeanFieldError {
    /// `true` when the measured error lies inside the Theorem 5.1 interval.
    pub fn within_bounds(&self) -> bool {
        self.error > self.lower_bound && self.error < self.upper_bound
    }
}

/// Measure the mean-field error at price `p_d` for a market with the
/// `L = λχτ²` loss. The weights are first rescaled (proportion-preserving,
/// which the paper notes is free) to meet the Theorem 5.1 precondition
/// `ω_i/λ_i ≤ 1/(p^D·m²)`.
///
/// # Errors
/// Propagates rescaling, fixed-point and validation errors.
pub fn measure_mean_field_error(params: &MarketParams, p_d: f64) -> Result<MeanFieldError> {
    let mut scaled = params.clone();
    let (w, _) = rescale_for_mean_field(&params.weights, &params.lambdas(), p_d)?;
    scaled.weights = w;
    let dd = tau_direct_linear_chi(&scaled, p_d, 2000, 1e-14)?;
    let mf = tau_mean_field(&scaled, p_d)?;
    let tau_bar_dd = mean_field_state(&scaled.weights, &dd)?;
    let tau_bar_mf = mean_field_state(&scaled.weights, &mf)?;
    let (lower_bound, upper_bound) = theorem51_bounds(scaled.m());
    let max_strategy_gap = dd
        .iter()
        .zip(&mf)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    Ok(MeanFieldError {
        m: scaled.m(),
        tau_bar_dd,
        tau_bar_mf,
        error: tau_bar_dd - tau_bar_mf,
        lower_bound,
        upper_bound,
        max_strategy_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LossModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = MarketParams::paper_defaults(m, &mut rng);
        p.loss_model = LossModel::LinearChi;
        p
    }

    #[test]
    fn bounds_formula() {
        let (lo, hi) = theorem51_bounds(10);
        assert!((lo + 1.0 / 600.0).abs() < 1e-15);
        assert!((hi - (0.1 - 2.0 / 300.0)).abs() < 1e-15);
        assert!(lo < 0.0 && hi > 0.0);
    }

    #[test]
    fn bounds_shrink_with_m() {
        let (lo1, hi1) = theorem51_bounds(10);
        let (lo2, hi2) = theorem51_bounds(1000);
        assert!(lo2 > lo1 && hi2 < hi1);
    }

    #[test]
    fn mean_field_state_formula() {
        let s = mean_field_state(&[1.0, 2.0], &[0.5, 0.25]).unwrap();
        assert!((s - (0.5 + 0.5) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn mean_field_state_rejects_mismatched_lengths() {
        // Regression: mismatched `weights`/`tau` used to zip-truncate into
        // a silently wrong τ̄; now it is a structured error either way
        // around.
        let err = mean_field_state(&[1.0, 2.0, 3.0], &[0.5, 0.25]).unwrap_err();
        assert!(matches!(
            err,
            MarketError::SellerCountMismatch {
                expected: 3,
                got: 2
            }
        ));
        assert!(mean_field_state(&[1.0], &[0.5, 0.25]).is_err());
        // Degenerate but consistent: both empty is a valid (0) state.
        assert_eq!(mean_field_state(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn error_within_theorem_bounds() {
        for &m in &[10usize, 50, 200] {
            let params = market(m, 42);
            let e = measure_mean_field_error(&params, 0.05).unwrap();
            assert!(
                e.within_bounds(),
                "m={m}: error {} outside ({}, {})",
                e.error,
                e.lower_bound,
                e.upper_bound
            );
        }
    }

    #[test]
    fn error_decreases_with_m() {
        let e10 = measure_mean_field_error(&market(10, 7), 0.05).unwrap();
        let e500 = measure_mean_field_error(&market(500, 7), 0.05).unwrap();
        assert!(
            e500.error.abs() < e10.error.abs(),
            "{} !< {}",
            e500.error.abs(),
            e10.error.abs()
        );
    }

    #[test]
    fn report_fields_consistent() {
        let e = measure_mean_field_error(&market(20, 9), 0.02).unwrap();
        assert_eq!(e.m, 20);
        assert!((e.error - (e.tau_bar_dd - e.tau_bar_mf)).abs() < 1e-15);
        assert!(e.max_strategy_gap >= 0.0);
        let js = serde_json::to_string(&e).unwrap();
        assert!(js.contains("tau_bar_dd"));
    }
}
