//! # share-market
//!
//! **Share: Stackelberg-Nash based Data Markets** (ICDE 2024) — the paper's
//! primary contribution, implemented end to end.
//!
//! Share models a buyer-leading three-party data market as a three-stage
//! Stackelberg-Nash game: the buyer (leader) posts the unit product price
//! `p^M`, the broker (sub-leader) posts the unit data price `p^D`, and the
//! `m` sellers (followers) simultaneously choose data fidelities `τ` in an
//! inner Nash game whose allocation rule (Eq. 13) doubles as the
//! seller-selection mechanism. All prices are **absolute** and emerge from
//! the game itself.
//!
//! ## Module map
//!
//! | Module | Paper section |
//! |--------|---------------|
//! | [`params`] | Table 1 + §6.1 defaults |
//! | [`profit`] | Eqs. 5–12 (utilities, translog cost, privacy loss) |
//! | [`allocation`] | Eq. 13 + integer rounding |
//! | [`stage3`] | §5.1.1 — Eq. 20 (direct), Eq. 23 (mean-field), Eq. 24 fixed point, numerical Nash |
//! | [`stage2`] | §5.1.2 — Eq. 25 |
//! | [`stage1`] | §5.1.3 — Eq. 27 |
//! | [`solver`] | backward induction + Def. 4.2 verification |
//! | [`meanfield`] | Theorem 5.1 error analysis |
//! | [`deviation`] | §6.2 effectiveness sweeps (Fig. 2) |
//! | [`sweep`] | §6.4 parameter influence (Figs. 4–8) |
//! | [`dynamics`] | Algorithm 1 (full trading round over real data) |
//! | [`ledger`] | payment records + conservation audits |
//! | [`rounds`] | multi-round markets, dummy-buyer warm-up |
//! | [`broker_leading`] | §7 future-work variant |
//! | [`welfare`] | price of anarchy vs a planner (extension) |
//! | [`truthfulness`] | misreport gains + regulator audits (extension) |
//! | [`calibration`] | §7 parameter fitting from trading records |
//! | [`analytics`] | ledger reports, revenue Gini, trajectories |
//! | [`simulation`] | long-horizon multi-buyer runs |
//! | [`fast_shapley`] | incremental sufficient-statistics Shapley (Fig. 3 scale) |
//!
//! ## Example
//!
//! ```
//! use share_market::params::MarketParams;
//! use share_market::solver::{solve, verify};
//!
//! let mut rng = rand::rng();
//! let params = MarketParams::paper_defaults(100, &mut rng);
//! let sne = solve(&params).unwrap();
//! // Eq. 25: the broker prices data at half the product revenue rate.
//! assert!((sne.p_d - params.buyer.v * sne.p_m / 2.0).abs() < 1e-12);
//! // Def. 4.2: nobody can unilaterally improve.
//! let check = verify(&params, &sne).unwrap();
//! assert!(check.is_equilibrium(1e-6));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod allocation;
pub mod analytics;
pub mod broker_leading;
pub mod calibration;
pub mod deviation;
pub mod dynamics;
pub mod error;
pub mod fast_shapley;
pub mod ledger;
pub mod meanfield;
pub mod params;
pub mod profit;
pub mod rounds;
pub mod simulation;
pub mod solver;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod sweep;
pub mod truthfulness;
pub mod welfare;

pub use error::{MarketError, Result};
pub use params::{BrokerParams, BuyerParams, LossModel, MarketParams, SellerParams};
pub use solver::{
    solve, solve_mean_field, solve_numeric, solve_numeric_warm, verify, NumericStats, SneSolution,
    SneVerification, SolveMethod, WarmStart,
};
