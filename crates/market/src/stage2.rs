//! Stage 2: the broker's price decision (paper §5.1.2).
//!
//! Anticipating the sellers' Stage-3 response to any `p^D` (Eq. 20), the
//! broker's profit becomes a strictly concave quadratic in `p^D` whose
//! maximizer is the closed form of Eq. 25:
//!
//! ```text
//! p^D* = v·p^M / 2
//! ```
//!
//! Remarkably, the expression is independent of the λ-aggregate: the
//! compensation and revenue terms share the factor `Σ 1/λ_i`. A numerical
//! path ([`p_d_numeric`]) maximizes the broker profit along the *actual*
//! (possibly clamped) seller response — it agrees with Eq. 25 in the
//! interior regime and remains correct at the τ = 1 boundary where the
//! closed form does not.

use crate::error::Result;
use crate::params::MarketParams;
use crate::profit::{broker_profit, total_dataset_quality};
use crate::stage3;
use share_numerics::optimize::grid::{maximize_scan_traced, ScanStats};

/// Closed-form Stage-2 strategy (paper Eq. 25): `p^D* = v·p^M / 2`.
#[inline]
pub fn p_d_star(v: f64, p_m: f64) -> f64 {
    v * p_m / 2.0
}

/// Equilibrium total dataset quality under the quadratic loss when the
/// interior Eq. 20 applies: `q^D* = Σ_i p^D / (2·λ_i)` (paper §5.1.2).
pub fn q_d_star(params: &MarketParams, p_d: f64) -> f64 {
    p_d / 2.0 * params.sum_inv_lambda()
}

/// Broker profit at `(p^M, p^D)` with sellers responding per Eq. 20
/// (clamped response honored by recomputing `q^D` from the actual τ).
///
/// # Errors
/// Propagates Stage-3 errors.
pub fn broker_profit_at(params: &MarketParams, p_m: f64, p_d: f64) -> Result<f64> {
    let tau = stage3::tau_direct(params, p_d)?;
    let chi = crate::allocation::allocate(params.buyer.n_pieces, &params.weights, &tau)
        .unwrap_or_else(|_| vec![0.0; params.m()]);
    let q_d = total_dataset_quality(&chi, &tau);
    Ok(broker_profit(&params.broker, &params.buyer, p_m, p_d, q_d))
}

/// Numerically maximize the broker profit over `p^D ∈ [0, p_d_max]` given
/// `p^M`, honoring the clamped seller response. Returns `(p^D*, Ω*)`.
///
/// # Errors
/// Propagates Stage-3 and optimizer errors.
pub fn p_d_numeric(params: &MarketParams, p_m: f64, p_d_max: f64) -> Result<(f64, f64)> {
    let obj = |p_d: f64| broker_profit_at(params, p_m, p_d).unwrap_or(f64::NEG_INFINITY);
    let (x, v, stats) = maximize_scan_traced(obj, 0.0, p_d_max, 64, 1e-12)?;
    share_obs::obs_trace!(
        target: "share_market::stage2",
        "p_d_scan",
        "p_d" => x,
        "grid_evals" => stats.grid_evals,
        "golden_iterations" => stats.golden_iterations,
        "bracket_failed" => stats.bracket_failed
    );
    Ok((x, v))
}

/// Numerically maximize the broker profit over a caller-chosen bracket
/// `p^D ∈ [p_d_lo, p_d_hi]` given `p^M`, with a caller-chosen grid density.
/// Used by the warm-started solver to refine around a cached neighbor's
/// price. Returns `(p^D*, Ω*, scan stats)`.
///
/// # Errors
/// Propagates Stage-3 and optimizer errors (including an invalid bracket
/// `p_d_lo ≥ p_d_hi`).
pub fn p_d_numeric_bracketed(
    params: &MarketParams,
    p_m: f64,
    p_d_lo: f64,
    p_d_hi: f64,
    n_grid: usize,
) -> Result<(f64, f64, ScanStats)> {
    let obj = |p_d: f64| broker_profit_at(params, p_m, p_d).unwrap_or(f64::NEG_INFINITY);
    let (x, v, stats) = maximize_scan_traced(obj, p_d_lo, p_d_hi, n_grid, 1e-12)?;
    share_obs::obs_trace!(
        target: "share_market::stage2",
        "p_d_scan",
        "p_d" => x,
        "grid_evals" => stats.grid_evals,
        "golden_iterations" => stats.golden_iterations,
        "bracket_failed" => stats.bracket_failed,
        "bracketed" => true
    );
    Ok((x, v, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn closed_form_is_half_v_pm() {
        assert_eq!(p_d_star(0.8, 0.036), 0.8 * 0.036 / 2.0);
        assert_eq!(p_d_star(1.0, 0.0), 0.0);
    }

    #[test]
    fn q_d_star_matches_tau_allocation_product() {
        // q^D from the closed form equals Σ χ_i·τ_i computed explicitly.
        let params = market(20, 1);
        let p_d = 0.01;
        let tau = stage3::tau_direct(&params, p_d).unwrap();
        let chi =
            crate::allocation::allocate(params.buyer.n_pieces, &params.weights, &tau).unwrap();
        let explicit = total_dataset_quality(&chi, &tau);
        let closed = q_d_star(&params, p_d);
        assert!(
            (explicit - closed).abs() < 1e-9 * closed.max(1.0),
            "{explicit} vs {closed}"
        );
    }

    #[test]
    fn numeric_maximizer_matches_eq25_interior() {
        let params = market(30, 2);
        let p_m = 0.04;
        let analytic = p_d_star(params.buyer.v, p_m);
        let (numeric, _) = p_d_numeric(&params, p_m, 4.0 * analytic).unwrap();
        assert!(
            (numeric - analytic).abs() < 1e-4 * analytic.max(1e-9),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn profit_is_concave_around_optimum() {
        let params = market(15, 3);
        let p_m = 0.05;
        let star = p_d_star(params.buyer.v, p_m);
        let at = |x: f64| broker_profit_at(&params, p_m, x).unwrap();
        let peak = at(star);
        assert!(peak > at(star * 0.5), "left of peak should be lower");
        assert!(peak > at(star * 1.5), "right of peak should be lower");
        // Second difference negative.
        let h = star * 0.01;
        assert!(at(star + h) - 2.0 * peak + at(star - h) < 0.0);
    }

    #[test]
    fn broker_profit_positive_at_paper_scale() {
        // With defaults the broker earns a strictly positive margin at the
        // optimum (v·p^M·q^D/2 vs p^D·q^D at p^D = v·p^M/2 gives net
        // p^D·q^D ≥ C since the translog cost is tiny).
        let params = market(100, 4);
        let p_m = 0.036;
        let omega = broker_profit_at(&params, p_m, p_d_star(params.buyer.v, p_m)).unwrap();
        assert!(omega > 0.0, "broker profit {omega}");
    }

    #[test]
    fn zero_pm_gives_nonpositive_profit() {
        let params = market(10, 5);
        // No revenue, only costs: optimal p^D is 0 and profit is −C(N, v).
        let (p_d, profit) = p_d_numeric(&params, 0.0, 0.1).unwrap();
        assert!(p_d < 1e-6, "{p_d}");
        assert!(profit <= 0.0);
    }
}
