//! Market analytics over the transaction ledger: revenue concentration,
//! weight/fidelity trajectories, and per-party cumulative outcomes — the
//! observability layer a market operator needs to supervise a long-running
//! Share deployment (the paper's assumed "market regulators").

use crate::error::{MarketError, Result};
use crate::ledger::Ledger;
use serde::{Deserialize, Serialize};

/// Gini coefficient of a non-negative distribution (0 = perfectly even,
/// → 1 = fully concentrated). Used on seller revenue shares.
///
/// # Errors
/// [`MarketError::InvalidParameter`] for empty input, negative entries, or
/// an all-zero distribution.
pub fn gini(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(MarketError::InvalidParameter {
            name: "values",
            reason: "empty distribution".to_string(),
        });
    }
    if values.iter().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(MarketError::InvalidParameter {
            name: "values",
            reason: "entries must be non-negative and finite".to_string(),
        });
    }
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "values",
            reason: "distribution sums to zero".to_string(),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    let n = sorted.len() as f64;
    // G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n  with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Ok((2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0))
}

/// Summary of a market's history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketReport {
    /// Rounds recorded.
    pub rounds: usize,
    /// Total buyer payments across rounds.
    pub total_buyer_payments: f64,
    /// Total broker net profit across rounds.
    pub total_broker_profit: f64,
    /// Per-seller cumulative revenue.
    pub seller_revenue: Vec<f64>,
    /// Gini coefficient of the cumulative seller revenue.
    pub revenue_gini: f64,
    /// Mean measured product performance across rounds.
    pub mean_performance: f64,
    /// Final seller weights.
    pub final_weights: Vec<f64>,
    /// Largest single-round weight shift observed.
    pub max_weight_shift: f64,
}

/// Build a [`MarketReport`] from a ledger.
///
/// # Errors
/// [`MarketError::InvalidParameter`] for an empty ledger.
pub fn report(ledger: &Ledger) -> Result<MarketReport> {
    let records = ledger.records();
    let Some(last) = records.last() else {
        return Err(MarketError::InvalidParameter {
            name: "ledger",
            reason: "no recorded rounds".to_string(),
        });
    };
    let m = last.tau.len();
    let mut seller_revenue = vec![0.0; m];
    let mut total_broker_profit = 0.0;
    let mut perf_sum = 0.0;
    let mut max_weight_shift = 0.0f64;
    for rec in records {
        for (acc, c) in seller_revenue.iter_mut().zip(&rec.payments.compensations) {
            *acc += c;
        }
        total_broker_profit += rec.payments.broker_net();
        perf_sum += rec.measured_performance;
        let shift = rec
            .weights_before
            .iter()
            .zip(&rec.weights_after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        max_weight_shift = max_weight_shift.max(shift);
    }
    let revenue_gini = gini(&seller_revenue).unwrap_or(0.0);
    Ok(MarketReport {
        rounds: records.len(),
        total_buyer_payments: ledger.total_buyer_payments(),
        total_broker_profit,
        seller_revenue,
        revenue_gini,
        mean_performance: perf_sum / records.len() as f64,
        final_weights: last.weights_after.clone(),
        max_weight_shift,
    })
}

/// Trajectory of one seller across rounds: `(weight, fidelity, revenue)`
/// per round — the raw series for operator dashboards.
///
/// # Errors
/// [`MarketError::InvalidParameter`] for an empty ledger or an out-of-range
/// seller index.
pub fn seller_trajectory(ledger: &Ledger, seller: usize) -> Result<Vec<(f64, f64, f64)>> {
    if ledger.is_empty() {
        return Err(MarketError::InvalidParameter {
            name: "ledger",
            reason: "no recorded rounds".to_string(),
        });
    }
    ledger
        .records()
        .iter()
        .map(|rec| {
            let w = rec.weights_after.get(seller).copied();
            let t = rec.tau.get(seller).copied();
            let r = rec.payments.compensations.get(seller).copied();
            match (w, t, r) {
                (Some(w), Some(t), Some(r)) => Ok((w, t, r)),
                _ => Err(MarketError::InvalidParameter {
                    name: "seller",
                    reason: format!("index {seller} out of range"),
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{Payments, TransactionRecord};

    fn record(round: usize, comp: Vec<f64>, perf: f64) -> TransactionRecord {
        let m = comp.len();
        TransactionRecord {
            round,
            p_m: 0.03,
            p_d: 0.01,
            tau: vec![0.1; m],
            chi: vec![10; m],
            epsilons: vec![0.5; m],
            q_d: 1.0,
            measured_performance: perf,
            payments: Payments {
                buyer_payment: 0.1,
                manufacturing_cost: 0.001,
                compensations: comp,
            },
            weights_before: vec![1.0 / m as f64; m],
            weights_after: vec![1.0 / m as f64; m],
        }
    }

    #[test]
    fn gini_extremes() {
        // Even distribution → 0.
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).unwrap() < 1e-12);
        // Fully concentrated among n → (n−1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        assert!((g - 0.75).abs() < 1e-12, "{g}");
    }

    #[test]
    fn gini_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = gini(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_rejects_bad_input() {
        assert!(gini(&[]).is_err());
        assert!(gini(&[-1.0, 2.0]).is_err());
        assert!(gini(&[0.0, 0.0]).is_err());
        assert!(gini(&[f64::NAN]).is_err());
    }

    #[test]
    fn report_aggregates_rounds() {
        let mut l = Ledger::new();
        l.push(record(0, vec![0.01, 0.03], 0.8));
        l.push(record(1, vec![0.02, 0.02], 0.6));
        let r = report(&l).unwrap();
        assert_eq!(r.rounds, 2);
        assert!((r.total_buyer_payments - 0.2).abs() < 1e-12);
        assert!((r.seller_revenue[0] - 0.03).abs() < 1e-12);
        assert!((r.seller_revenue[1] - 0.05).abs() < 1e-12);
        assert!((r.mean_performance - 0.7).abs() < 1e-12);
        assert!(r.revenue_gini >= 0.0 && r.revenue_gini < 1.0);
        // broker_net per round: 0.1 − 0.001 − 0.04 = 0.059 → ×2.
        assert!((r.total_broker_profit - 0.118).abs() < 1e-12);
    }

    #[test]
    fn report_rejects_empty_ledger() {
        assert!(report(&Ledger::new()).is_err());
    }

    #[test]
    fn trajectory_tracks_rounds() {
        let mut l = Ledger::new();
        l.push(record(0, vec![0.01, 0.03], 0.8));
        l.push(record(1, vec![0.02, 0.02], 0.6));
        let t = seller_trajectory(&l, 1).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t[0].2 - 0.03).abs() < 1e-12);
        assert!((t[1].2 - 0.02).abs() < 1e-12);
        assert!(seller_trajectory(&l, 5).is_err());
        assert!(seller_trajectory(&Ledger::new(), 0).is_err());
    }
}
