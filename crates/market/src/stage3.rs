//! Stage 3: the sellers' inner Nash game (paper §5.1.1).
//!
//! Given the unit data price `p^D`, the `m` sellers simultaneously choose
//! fidelities `τ ∈ [0, 1]` to maximize `Ψ_i = p^D·χ_i·τ_i − L_i(τ_i)` with
//! the allocation `χ_i = N·ω_i·τ_i / Σ_j ω_j·τ_j` (Eq. 13) coupling them.
//!
//! Three solution paths:
//! - [`tau_direct`] — the closed form of Eq. 20 (quadratic loss), interior
//!   solution clamped to `τ ≤ 1` per the boundary argument of Theorem 5.2;
//! - [`tau_mean_field`] — the mean-field approximation of Eq. 23 for the
//!   `L = λ·χ·τ²` loss where direct derivation is impractical;
//! - [`tau_direct_linear_chi`] — the *exact* equilibrium of the `λχτ²` loss
//!   via fixed-point iteration on the per-seller quadratic root (Eq. 24),
//!   used by the Theorem 5.1 error analysis;
//! - [`SellerNashGame`] — a [`NashGame`] view for the fully numerical
//!   best-response path (arbitrary loss models, verification).

use crate::allocation::allocate;
use crate::error::{MarketError, Result};
use crate::params::MarketParams;
use crate::profit::seller_profit;
use share_game::nash::NashGame;

/// Closed-form Stage-3 equilibrium for the quadratic loss (paper Eq. 20):
///
/// ```text
/// τ_i* = p^D / (2N·√(ω_i·λ_i)) · Σ_j √(ω_j/λ_j)
/// ```
///
/// clamped into `[0, 1]` (boundary optimum per Theorem 5.2).
///
/// # Errors
/// - [`MarketError::InvalidParameter`] for a negative or non-finite `p^D`.
/// - Propagates parameter validation errors.
pub fn tau_direct(params: &MarketParams, p_d: f64) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    let n = params.buyer.n_pieces as f64;
    let agg = params.sum_sqrt_w_over_lambda();
    Ok(params
        .weights
        .iter()
        .zip(&params.sellers)
        .map(|(w, s)| {
            let t = p_d / (2.0 * n * (w * s.lambda).sqrt()) * agg;
            t.clamp(0.0, 1.0)
        })
        .collect())
}

/// Mean-field Stage-3 approximation for the `L = λ·χ·τ²` loss (paper
/// Eq. 23): `τ_i* = 2p^D / (3λ_i)`, clamped into `[0, 1]`.
///
/// # Errors
/// Same as [`tau_direct`].
pub fn tau_mean_field(params: &MarketParams, p_d: f64) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    Ok(params
        .sellers
        .iter()
        .map(|s| (2.0 * p_d / (3.0 * s.lambda)).clamp(0.0, 1.0))
        .collect())
}

/// Exact Stage-3 equilibrium for the `L = λ·χ·τ²` loss by fixed-point
/// iteration on the paper's per-seller quadratic root (Eq. 24):
///
/// ```text
/// τ_i = [p^D·ω_i − 3λ_i·Σ_{¬i} + √((3λ_i·Σ_{¬i} − p^D·ω_i)² + 16·p^D·λ_i·ω_i·Σ_{¬i})] / (4·λ_i·ω_i)
/// ```
///
/// where `Σ_{¬i} = Σ_{j≠i} ω_j·τ_j`. Used as ground truth `τ̄^DD` in the
/// Theorem 5.1 error analysis.
///
/// This is the structure-of-arrays fast path: per-seller coefficients
/// (`3λ_i`, `p^D·ω_i`, `16·p^D·λ_i·ω_i`, `4λ_i·ω_i`) are hoisted out of
/// the sweep into contiguous slices via the `share_numerics::kernels`
/// exact-order kernels, so each iteration reads flat arrays instead of
/// re-deriving four products per seller from the array-of-structs layout.
/// The output is **bit-identical** to [`tau_direct_linear_chi_scalar`]
/// (pinned by this crate's differential tests) because every hoisted
/// expression keeps the scalar path's association order. A thread-local
/// [`Stage3Workspace`] makes repeated solves allocation-free after the
/// first call at a given `m`.
///
/// # Errors
/// - Same domain errors as [`tau_direct`].
/// - [`MarketError::InvalidParameter`] when the iteration fails to converge.
pub fn tau_direct_linear_chi(
    params: &MarketParams,
    p_d: f64,
    max_iter: usize,
    tol: f64,
) -> Result<Vec<f64>> {
    use std::cell::RefCell;
    thread_local! {
        static WS: RefCell<Stage3Workspace> = RefCell::new(Stage3Workspace::new());
    }
    WS.with(|ws| tau_direct_linear_chi_soa(params, p_d, max_iter, tol, &mut ws.borrow_mut()))
}

/// Reusable structure-of-arrays buffers for [`tau_direct_linear_chi_soa`].
/// One workspace amortizes every per-solve allocation: buffers grow to the
/// largest `m` seen and are reused (contents are overwritten each call).
#[derive(Debug, Default)]
pub struct Stage3Workspace {
    /// Contiguous copy of the sellers' privacy sensitivities `λ_i`.
    lambda: Vec<f64>,
    /// `3λ_i` (the coupling coefficient of Eq. 24's linear term).
    c3l: Vec<f64>,
    /// `p^D·ω_i`.
    pdw: Vec<f64>,
    /// `16·p^D·λ_i·ω_i` (the discriminant's cross coefficient).
    c16: Vec<f64>,
    /// `4λ_i·ω_i` (the root's denominator).
    denom: Vec<f64>,
    /// The iterate `τ` itself.
    tau: Vec<f64>,
}

impl Stage3Workspace {
    /// Fresh, empty workspace (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, m: usize) {
        for buf in [
            &mut self.lambda,
            &mut self.c3l,
            &mut self.pdw,
            &mut self.c16,
            &mut self.denom,
            &mut self.tau,
        ] {
            buf.clear();
            buf.resize(m, 0.0);
        }
    }
}

/// [`tau_direct_linear_chi`] with a caller-owned [`Stage3Workspace`], for
/// hot loops that want explicit control over buffer reuse (the serving
/// engine's workers and the benches). Bit-identical to the scalar
/// reference; see [`tau_direct_linear_chi`] for the layout story.
///
/// # Errors
/// Same as [`tau_direct_linear_chi`].
pub fn tau_direct_linear_chi_soa(
    params: &MarketParams,
    p_d: f64,
    max_iter: usize,
    tol: f64,
    ws: &mut Stage3Workspace,
) -> Result<Vec<f64>> {
    use share_numerics::kernels;
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    let m = params.m();
    ws.reset(m);
    for (dst, s) in ws.lambda.iter_mut().zip(&params.sellers) {
        *dst = s.lambda;
    }
    let weights: &[f64] = &params.weights;
    // Hoisted coefficients. Each kernel preserves the scalar reference's
    // association order exactly: `3.0*λ`, `p^D·ω`, `((16·p^D)·λ)·ω`,
    // `(4·λ)·ω` — see the kernels module's exact-order contract.
    kernels::scale(3.0, &ws.lambda, &mut ws.c3l)?;
    kernels::scale(p_d, weights, &mut ws.pdw)?;
    kernels::scale_mul(16.0 * p_d, &ws.lambda, weights, &mut ws.c16)?;
    kernels::scale_mul(4.0, &ws.lambda, weights, &mut ws.denom)?;
    // Warm start from the mean-field solution (unclamped):
    // `(2·p^D)/(3λ_i)`, reusing the hoisted `3λ` slice.
    kernels::scale_recip(2.0 * p_d, &ws.c3l, &mut ws.tau)?;
    // Damped Gauss–Seidel on the per-seller root formula: the running total
    // is kept consistent with in-place updates, and the 0.5 damping factor
    // suppresses the oscillation large rescaled markets otherwise exhibit.
    // The sweep itself is sequential (the total is loop-carried); the wins
    // are the hoisted coefficients and the flat-slice accesses.
    let mut total: f64 = kernels::dot_seq(weights, &ws.tau);
    const DAMPING: f64 = 0.5;
    let tau: &mut [f64] = &mut ws.tau;
    for iter in 0..max_iter {
        let mut delta = 0.0f64;
        let mut scale = 0.0f64;
        for i in 0..m {
            let w = weights[i];
            let sig = (total - w * tau[i]).max(0.0);
            let a = ws.c3l[i] * sig - ws.pdw[i];
            let disc = a * a + ws.c16[i] * sig;
            let root = ((ws.pdw[i] - ws.c3l[i] * sig + disc.sqrt()) / ws.denom[i]).max(0.0);
            let new = DAMPING * root + (1.0 - DAMPING) * tau[i];
            total += w * (new - tau[i]);
            delta = delta.max((new - tau[i]).abs());
            scale = scale.max(new.abs());
            tau[i] = new;
        }
        // Converge on relative movement: τ magnitudes shrink as O(1/m²)
        // under the Theorem 5.1 rescaling, so an absolute criterion would
        // demand ever more iterations at large m.
        if delta <= tol.max(1e-12 * scale) {
            share_obs::obs_trace!(
                target: "share_market::stage3",
                "linear_chi_fixed_point",
                "m" => m,
                "iterations" => iter + 1,
                "residual" => delta
            );
            kernels::clamp_in_place(tau, 0.0, 1.0);
            return Ok(tau.to_vec());
        }
    }
    share_obs::obs_warn!(
        target: "share_market::stage3",
        "linear_chi_fixed_point_diverged",
        "m" => m,
        "max_iter" => max_iter
    );
    Err(MarketError::InvalidParameter {
        name: "tau_direct_linear_chi",
        reason: format!("fixed point did not converge within {max_iter} iterations"),
    })
}

/// The original element-at-a-time Eq. 24 fixed point, kept verbatim as the
/// reference implementation the SoA path is differentially tested against.
/// Semantically identical to [`tau_direct_linear_chi`]; prefer that entry
/// point everywhere outside differential tests — this one re-derives every
/// coefficient from the array-of-structs layout on each sweep.
///
/// # Errors
/// Same as [`tau_direct_linear_chi`].
pub fn tau_direct_linear_chi_scalar(
    params: &MarketParams,
    p_d: f64,
    max_iter: usize,
    tol: f64,
) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    let m = params.m();
    // Warm start from the mean-field solution (unclamped).
    let mut tau: Vec<f64> = params
        .sellers
        .iter()
        .map(|s| 2.0 * p_d / (3.0 * s.lambda))
        .collect();
    // Damped Gauss–Seidel on the per-seller root formula: the running total
    // is kept consistent with in-place updates, and the 0.5 damping factor
    // suppresses the oscillation large rescaled markets otherwise exhibit.
    let mut total: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
    const DAMPING: f64 = 0.5;
    #[allow(clippy::needless_range_loop)] // τ is read and written at index i
    for iter in 0..max_iter {
        let mut delta = 0.0f64;
        let mut scale = 0.0f64;
        for i in 0..m {
            let w = params.weights[i];
            let l = params.sellers[i].lambda;
            let sig = (total - w * tau[i]).max(0.0);
            let a = 3.0 * l * sig - p_d * w;
            let disc = a * a + 16.0 * p_d * l * w * sig;
            let root = ((p_d * w - 3.0 * l * sig + disc.sqrt()) / (4.0 * l * w)).max(0.0);
            let new = DAMPING * root + (1.0 - DAMPING) * tau[i];
            total += w * (new - tau[i]);
            delta = delta.max((new - tau[i]).abs());
            scale = scale.max(new.abs());
            tau[i] = new;
        }
        // Converge on relative movement: τ magnitudes shrink as O(1/m²)
        // under the Theorem 5.1 rescaling, so an absolute criterion would
        // demand ever more iterations at large m.
        if delta <= tol.max(1e-12 * scale) {
            return Ok(tau.into_iter().map(|t| t.clamp(0.0, 1.0)).collect());
        }
    }
    Err(MarketError::InvalidParameter {
        name: "tau_direct_linear_chi",
        reason: format!("fixed point did not converge within {max_iter} iterations"),
    })
}

/// The sellers' simultaneous-move game as a [`NashGame`], for the fully
/// numerical solution path and equilibrium verification.
pub struct SellerNashGame<'a> {
    params: &'a MarketParams,
    p_d: f64,
}

impl<'a> SellerNashGame<'a> {
    /// View `params` as a Nash game at data price `p_d`.
    pub fn new(params: &'a MarketParams, p_d: f64) -> Self {
        Self { params, p_d }
    }

    /// The data price this game is parameterized by.
    pub fn p_d(&self) -> f64 {
        self.p_d
    }
}

impl NashGame for SellerNashGame<'_> {
    fn n_players(&self) -> usize {
        self.params.m()
    }

    fn strategy_bounds(&self, _player: usize) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn payoff(&self, player: usize, profile: &[f64]) -> f64 {
        let chi = match allocate(self.params.buyer.n_pieces, &self.params.weights, profile) {
            Ok(c) => c,
            // All-zero fidelity: nobody sells, zero profit.
            Err(_) => return 0.0,
        };
        seller_profit(
            self.params.loss_model,
            self.params.sellers[player].lambda,
            self.p_d,
            chi[player],
            profile[player],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BrokerParams, BuyerParams, LossModel, SellerParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use share_game::best_response::{solve_best_response, BrOptions};
    use share_game::verify::is_epsilon_nash;

    fn small_market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn eq20_formula_matches_manual_two_sellers() {
        let params = MarketParams {
            buyer: BuyerParams {
                n_pieces: 100,
                ..BuyerParams::paper_defaults()
            },
            broker: BrokerParams::paper_defaults(),
            sellers: vec![SellerParams { lambda: 0.25 }, SellerParams { lambda: 1.0 }],
            weights: vec![1.0, 1.0],
            loss_model: LossModel::Quadratic,
        };
        let p_d = 0.5;
        let tau = tau_direct(&params, p_d).unwrap();
        let agg = (1.0f64 / 0.25).sqrt() + 1.0; // 2 + 1 = 3
        let t0 = 0.5 / (2.0 * 100.0 * (0.25f64).sqrt()) * agg;
        let t1 = 0.5 / (2.0 * 100.0 * 1.0) * agg;
        assert!((tau[0] - t0).abs() < 1e-12);
        assert!((tau[1] - t1).abs() < 1e-12);
        // More privacy-sensitive seller offers lower fidelity.
        assert!(tau[1] < tau[0]);
    }

    #[test]
    fn eq20_satisfies_first_order_condition() {
        // At the closed form, Eq. 18 must hold: p^D·Σω_jτ_j = 2N·λ_i·ω_i·τ_i².
        let params = small_market(10, 1);
        let p_d = 0.01;
        let tau = tau_direct(&params, p_d).unwrap();
        let s: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
        let n = params.buyer.n_pieces as f64;
        for (i, &tau_i) in tau.iter().enumerate() {
            let lhs = p_d * s;
            let rhs = 2.0 * n * params.sellers[i].lambda * params.weights[i] * tau_i * tau_i;
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.max(1e-12),
                "seller {i}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn eq20_is_epsilon_nash_of_the_true_game() {
        // The analytic solution must survive numerical deviation testing.
        let params = small_market(8, 2);
        let p_d = 0.01;
        let tau = tau_direct(&params, p_d).unwrap();
        let game = SellerNashGame::new(&params, p_d);
        assert!(is_epsilon_nash(&game, &tau, 1e-7, BrOptions::default()).unwrap());
    }

    #[test]
    fn numerical_best_response_agrees_with_eq20() {
        let params = small_market(6, 3);
        let p_d = 0.012;
        let analytic = tau_direct(&params, p_d).unwrap();
        let game = SellerNashGame::new(&params, p_d);
        let start = vec![0.5; 6];
        let numeric = solve_best_response(&game, &start, BrOptions::default()).unwrap();
        for (a, n) in analytic.iter().zip(&numeric.profile) {
            assert!((a - n).abs() < 1e-4, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn tau_scales_linearly_with_price() {
        let params = small_market(5, 4);
        let t1 = tau_direct(&params, 0.001).unwrap();
        let t2 = tau_direct(&params, 0.002).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            assert!((b / a - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_price_means_zero_fidelity() {
        let params = small_market(5, 5);
        assert!(tau_direct(&params, 0.0).unwrap().iter().all(|&t| t == 0.0));
        assert!(tau_mean_field(&params, 0.0)
            .unwrap()
            .iter()
            .all(|&t| t == 0.0));
    }

    #[test]
    fn huge_price_clamps_to_one() {
        let params = small_market(5, 6);
        let tau = tau_direct(&params, 1e6).unwrap();
        assert!(tau.iter().all(|&t| t == 1.0));
        let mf = tau_mean_field(&params, 1e6).unwrap();
        assert!(mf.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn mean_field_formula() {
        let mut params = small_market(4, 7);
        params.loss_model = LossModel::LinearChi;
        let p_d = 0.3;
        let tau = tau_mean_field(&params, p_d).unwrap();
        for (t, s) in tau.iter().zip(&params.sellers) {
            assert!((t - (2.0 * p_d / (3.0 * s.lambda)).min(1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_chi_fixed_point_converges_and_is_nash() {
        let mut params = small_market(12, 8);
        params.loss_model = LossModel::LinearChi;
        let p_d = 0.02;
        let tau = tau_direct_linear_chi(&params, p_d, 500, 1e-12).unwrap();
        assert!(tau.iter().all(|&t| (0.0..=1.0).contains(&t)));
        let game = SellerNashGame::new(&params, p_d);
        assert!(
            is_epsilon_nash(&game, &tau, 1e-6, BrOptions::default()).unwrap(),
            "{tau:?}"
        );
    }

    #[test]
    fn mean_field_approaches_direct_for_large_m() {
        // Theorem 5.1: with the ω-scaling precondition, the weighted-mean gap
        // shrinks as m grows.
        use share_valuation::weights::rescale_for_mean_field;
        let gap = |m: usize| -> f64 {
            let mut params = small_market(m, 9);
            params.loss_model = LossModel::LinearChi;
            let p_d = 0.05;
            let (scaled, _) =
                rescale_for_mean_field(&params.weights, &params.lambdas(), p_d).unwrap();
            params.weights = scaled;
            let dd = tau_direct_linear_chi(&params, p_d, 1000, 1e-13).unwrap();
            let mf = tau_mean_field(&params, p_d).unwrap();
            let wm = |t: &[f64]| -> f64 {
                params
                    .weights
                    .iter()
                    .zip(t)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    / m as f64
            };
            (wm(&dd) - wm(&mf)).abs()
        };
        let g_small = gap(10);
        let g_big = gap(100);
        assert!(
            g_big < g_small,
            "gap should shrink with m: {g_small} -> {g_big}"
        );
    }

    #[test]
    fn invalid_price_rejected() {
        let params = small_market(3, 10);
        assert!(tau_direct(&params, -0.1).is_err());
        assert!(tau_direct(&params, f64::NAN).is_err());
        assert!(tau_mean_field(&params, f64::INFINITY).is_err());
        assert!(tau_direct_linear_chi(&params, -1.0, 10, 1e-9).is_err());
    }

    #[test]
    fn seller_game_zero_profile_payoff_is_zero() {
        let params = small_market(3, 11);
        let game = SellerNashGame::new(&params, 0.01);
        assert_eq!(game.payoff(0, &[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(game.n_players(), 3);
        assert_eq!(game.strategy_bounds(1), (0.0, 1.0));
        assert_eq!(game.p_d(), 0.01);
    }
}
