//! Stage 3: the sellers' inner Nash game (paper §5.1.1).
//!
//! Given the unit data price `p^D`, the `m` sellers simultaneously choose
//! fidelities `τ ∈ [0, 1]` to maximize `Ψ_i = p^D·χ_i·τ_i − L_i(τ_i)` with
//! the allocation `χ_i = N·ω_i·τ_i / Σ_j ω_j·τ_j` (Eq. 13) coupling them.
//!
//! Three solution paths:
//! - [`tau_direct`] — the closed form of Eq. 20 (quadratic loss), interior
//!   solution clamped to `τ ≤ 1` per the boundary argument of Theorem 5.2;
//! - [`tau_mean_field`] — the mean-field approximation of Eq. 23 for the
//!   `L = λ·χ·τ²` loss where direct derivation is impractical;
//! - [`tau_direct_linear_chi`] — the *exact* equilibrium of the `λχτ²` loss
//!   via fixed-point iteration on the per-seller quadratic root (Eq. 24),
//!   used by the Theorem 5.1 error analysis;
//! - [`SellerNashGame`] — a [`NashGame`] view for the fully numerical
//!   best-response path (arbitrary loss models, verification).

use crate::allocation::allocate;
use crate::error::{MarketError, Result};
use crate::params::MarketParams;
use crate::profit::seller_profit;
use share_game::nash::NashGame;

/// Closed-form Stage-3 equilibrium for the quadratic loss (paper Eq. 20):
///
/// ```text
/// τ_i* = p^D / (2N·√(ω_i·λ_i)) · Σ_j √(ω_j/λ_j)
/// ```
///
/// clamped into `[0, 1]` (boundary optimum per Theorem 5.2).
///
/// # Errors
/// - [`MarketError::InvalidParameter`] for a negative or non-finite `p^D`.
/// - Propagates parameter validation errors.
pub fn tau_direct(params: &MarketParams, p_d: f64) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    let n = params.buyer.n_pieces as f64;
    let agg = params.sum_sqrt_w_over_lambda();
    Ok(params
        .weights
        .iter()
        .zip(&params.sellers)
        .map(|(w, s)| {
            let t = p_d / (2.0 * n * (w * s.lambda).sqrt()) * agg;
            t.clamp(0.0, 1.0)
        })
        .collect())
}

/// Mean-field Stage-3 approximation for the `L = λ·χ·τ²` loss (paper
/// Eq. 23): `τ_i* = 2p^D / (3λ_i)`, clamped into `[0, 1]`.
///
/// # Errors
/// Same as [`tau_direct`].
pub fn tau_mean_field(params: &MarketParams, p_d: f64) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    Ok(params
        .sellers
        .iter()
        .map(|s| (2.0 * p_d / (3.0 * s.lambda)).clamp(0.0, 1.0))
        .collect())
}

/// Exact Stage-3 equilibrium for the `L = λ·χ·τ²` loss by fixed-point
/// iteration on the paper's per-seller quadratic root (Eq. 24):
///
/// ```text
/// τ_i = [p^D·ω_i − 3λ_i·Σ_{¬i} + √((3λ_i·Σ_{¬i} − p^D·ω_i)² + 16·p^D·λ_i·ω_i·Σ_{¬i})] / (4·λ_i·ω_i)
/// ```
///
/// where `Σ_{¬i} = Σ_{j≠i} ω_j·τ_j`. Used as ground truth `τ̄^DD` in the
/// Theorem 5.1 error analysis.
///
/// # Errors
/// - Same domain errors as [`tau_direct`].
/// - [`MarketError::InvalidParameter`] when the iteration fails to converge.
pub fn tau_direct_linear_chi(
    params: &MarketParams,
    p_d: f64,
    max_iter: usize,
    tol: f64,
) -> Result<Vec<f64>> {
    params.validate()?;
    if !(p_d.is_finite() && p_d >= 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "p_d",
            reason: format!("must be non-negative and finite, got {p_d}"),
        });
    }
    let m = params.m();
    // Warm start from the mean-field solution (unclamped).
    let mut tau: Vec<f64> = params
        .sellers
        .iter()
        .map(|s| 2.0 * p_d / (3.0 * s.lambda))
        .collect();
    // Damped Gauss–Seidel on the per-seller root formula: the running total
    // is kept consistent with in-place updates, and the 0.5 damping factor
    // suppresses the oscillation large rescaled markets otherwise exhibit.
    let mut total: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
    const DAMPING: f64 = 0.5;
    #[allow(clippy::needless_range_loop)] // τ is read and written at index i
    for iter in 0..max_iter {
        let mut delta = 0.0f64;
        let mut scale = 0.0f64;
        for i in 0..m {
            let w = params.weights[i];
            let l = params.sellers[i].lambda;
            let sig = (total - w * tau[i]).max(0.0);
            let a = 3.0 * l * sig - p_d * w;
            let disc = a * a + 16.0 * p_d * l * w * sig;
            let root = ((p_d * w - 3.0 * l * sig + disc.sqrt()) / (4.0 * l * w)).max(0.0);
            let new = DAMPING * root + (1.0 - DAMPING) * tau[i];
            total += w * (new - tau[i]);
            delta = delta.max((new - tau[i]).abs());
            scale = scale.max(new.abs());
            tau[i] = new;
        }
        // Converge on relative movement: τ magnitudes shrink as O(1/m²)
        // under the Theorem 5.1 rescaling, so an absolute criterion would
        // demand ever more iterations at large m.
        if delta <= tol.max(1e-12 * scale) {
            share_obs::obs_trace!(
                target: "share_market::stage3",
                "linear_chi_fixed_point",
                "m" => m,
                "iterations" => iter + 1,
                "residual" => delta
            );
            return Ok(tau.into_iter().map(|t| t.clamp(0.0, 1.0)).collect());
        }
    }
    share_obs::obs_warn!(
        target: "share_market::stage3",
        "linear_chi_fixed_point_diverged",
        "m" => m,
        "max_iter" => max_iter
    );
    Err(MarketError::InvalidParameter {
        name: "tau_direct_linear_chi",
        reason: format!("fixed point did not converge within {max_iter} iterations"),
    })
}

/// The sellers' simultaneous-move game as a [`NashGame`], for the fully
/// numerical solution path and equilibrium verification.
pub struct SellerNashGame<'a> {
    params: &'a MarketParams,
    p_d: f64,
}

impl<'a> SellerNashGame<'a> {
    /// View `params` as a Nash game at data price `p_d`.
    pub fn new(params: &'a MarketParams, p_d: f64) -> Self {
        Self { params, p_d }
    }

    /// The data price this game is parameterized by.
    pub fn p_d(&self) -> f64 {
        self.p_d
    }
}

impl NashGame for SellerNashGame<'_> {
    fn n_players(&self) -> usize {
        self.params.m()
    }

    fn strategy_bounds(&self, _player: usize) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn payoff(&self, player: usize, profile: &[f64]) -> f64 {
        let chi = match allocate(self.params.buyer.n_pieces, &self.params.weights, profile) {
            Ok(c) => c,
            // All-zero fidelity: nobody sells, zero profit.
            Err(_) => return 0.0,
        };
        seller_profit(
            self.params.loss_model,
            self.params.sellers[player].lambda,
            self.p_d,
            chi[player],
            profile[player],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BrokerParams, BuyerParams, LossModel, SellerParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use share_game::best_response::{solve_best_response, BrOptions};
    use share_game::verify::is_epsilon_nash;

    fn small_market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn eq20_formula_matches_manual_two_sellers() {
        let params = MarketParams {
            buyer: BuyerParams {
                n_pieces: 100,
                ..BuyerParams::paper_defaults()
            },
            broker: BrokerParams::paper_defaults(),
            sellers: vec![SellerParams { lambda: 0.25 }, SellerParams { lambda: 1.0 }],
            weights: vec![1.0, 1.0],
            loss_model: LossModel::Quadratic,
        };
        let p_d = 0.5;
        let tau = tau_direct(&params, p_d).unwrap();
        let agg = (1.0f64 / 0.25).sqrt() + 1.0; // 2 + 1 = 3
        let t0 = 0.5 / (2.0 * 100.0 * (0.25f64).sqrt()) * agg;
        let t1 = 0.5 / (2.0 * 100.0 * 1.0) * agg;
        assert!((tau[0] - t0).abs() < 1e-12);
        assert!((tau[1] - t1).abs() < 1e-12);
        // More privacy-sensitive seller offers lower fidelity.
        assert!(tau[1] < tau[0]);
    }

    #[test]
    fn eq20_satisfies_first_order_condition() {
        // At the closed form, Eq. 18 must hold: p^D·Σω_jτ_j = 2N·λ_i·ω_i·τ_i².
        let params = small_market(10, 1);
        let p_d = 0.01;
        let tau = tau_direct(&params, p_d).unwrap();
        let s: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
        let n = params.buyer.n_pieces as f64;
        for (i, &tau_i) in tau.iter().enumerate() {
            let lhs = p_d * s;
            let rhs = 2.0 * n * params.sellers[i].lambda * params.weights[i] * tau_i * tau_i;
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.max(1e-12),
                "seller {i}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn eq20_is_epsilon_nash_of_the_true_game() {
        // The analytic solution must survive numerical deviation testing.
        let params = small_market(8, 2);
        let p_d = 0.01;
        let tau = tau_direct(&params, p_d).unwrap();
        let game = SellerNashGame::new(&params, p_d);
        assert!(is_epsilon_nash(&game, &tau, 1e-7, BrOptions::default()).unwrap());
    }

    #[test]
    fn numerical_best_response_agrees_with_eq20() {
        let params = small_market(6, 3);
        let p_d = 0.012;
        let analytic = tau_direct(&params, p_d).unwrap();
        let game = SellerNashGame::new(&params, p_d);
        let start = vec![0.5; 6];
        let numeric = solve_best_response(&game, &start, BrOptions::default()).unwrap();
        for (a, n) in analytic.iter().zip(&numeric.profile) {
            assert!((a - n).abs() < 1e-4, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn tau_scales_linearly_with_price() {
        let params = small_market(5, 4);
        let t1 = tau_direct(&params, 0.001).unwrap();
        let t2 = tau_direct(&params, 0.002).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            assert!((b / a - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_price_means_zero_fidelity() {
        let params = small_market(5, 5);
        assert!(tau_direct(&params, 0.0).unwrap().iter().all(|&t| t == 0.0));
        assert!(tau_mean_field(&params, 0.0)
            .unwrap()
            .iter()
            .all(|&t| t == 0.0));
    }

    #[test]
    fn huge_price_clamps_to_one() {
        let params = small_market(5, 6);
        let tau = tau_direct(&params, 1e6).unwrap();
        assert!(tau.iter().all(|&t| t == 1.0));
        let mf = tau_mean_field(&params, 1e6).unwrap();
        assert!(mf.iter().all(|&t| t == 1.0));
    }

    #[test]
    fn mean_field_formula() {
        let mut params = small_market(4, 7);
        params.loss_model = LossModel::LinearChi;
        let p_d = 0.3;
        let tau = tau_mean_field(&params, p_d).unwrap();
        for (t, s) in tau.iter().zip(&params.sellers) {
            assert!((t - (2.0 * p_d / (3.0 * s.lambda)).min(1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_chi_fixed_point_converges_and_is_nash() {
        let mut params = small_market(12, 8);
        params.loss_model = LossModel::LinearChi;
        let p_d = 0.02;
        let tau = tau_direct_linear_chi(&params, p_d, 500, 1e-12).unwrap();
        assert!(tau.iter().all(|&t| (0.0..=1.0).contains(&t)));
        let game = SellerNashGame::new(&params, p_d);
        assert!(
            is_epsilon_nash(&game, &tau, 1e-6, BrOptions::default()).unwrap(),
            "{tau:?}"
        );
    }

    #[test]
    fn mean_field_approaches_direct_for_large_m() {
        // Theorem 5.1: with the ω-scaling precondition, the weighted-mean gap
        // shrinks as m grows.
        use share_valuation::weights::rescale_for_mean_field;
        let gap = |m: usize| -> f64 {
            let mut params = small_market(m, 9);
            params.loss_model = LossModel::LinearChi;
            let p_d = 0.05;
            let (scaled, _) =
                rescale_for_mean_field(&params.weights, &params.lambdas(), p_d).unwrap();
            params.weights = scaled;
            let dd = tau_direct_linear_chi(&params, p_d, 1000, 1e-13).unwrap();
            let mf = tau_mean_field(&params, p_d).unwrap();
            let wm = |t: &[f64]| -> f64 {
                params
                    .weights
                    .iter()
                    .zip(t)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    / m as f64
            };
            (wm(&dd) - wm(&mf)).abs()
        };
        let g_small = gap(10);
        let g_big = gap(100);
        assert!(
            g_big < g_small,
            "gap should shrink with m: {g_small} -> {g_big}"
        );
    }

    #[test]
    fn invalid_price_rejected() {
        let params = small_market(3, 10);
        assert!(tau_direct(&params, -0.1).is_err());
        assert!(tau_direct(&params, f64::NAN).is_err());
        assert!(tau_mean_field(&params, f64::INFINITY).is_err());
        assert!(tau_direct_linear_chi(&params, -1.0, 10, 1e-9).is_err());
    }

    #[test]
    fn seller_game_zero_profile_payoff_is_zero() {
        let params = small_market(3, 11);
        let game = SellerNashGame::new(&params, 0.01);
        assert_eq!(game.payoff(0, &[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(game.n_players(), 3);
        assert_eq!(game.strategy_bounds(1), (0.0, 1.0));
        assert_eq!(game.p_d(), 0.01);
    }
}
