//! Backward-induction SNE solver (paper §5.1) and Def. 4.2 verification.
//!
//! [`solve`] composes the three closed forms — Eq. 27 (buyer), Eq. 25
//! (broker), Eq. 20 (sellers) — into the full optimal strategy profile
//! `⟨p^M*, p^D*, τ*⟩` plus the induced allocation, qualities and profits.
//! [`solve_numeric`] replaces the Stage-1/2 closed forms with nested
//! numerical maximization along the true (clamp-aware) reaction curves; it
//! agrees with the analytic path in the interior regime and stays correct at
//! the `τ = 1` boundary.
//!
//! [`verify`] checks the Stackelberg-Nash Equilibrium conditions of
//! Def. 4.2: deviations of the buyer and the broker are evaluated against
//! the lower stages' *reaction expressions* (as in the paper's §5.1.4
//! existence argument), and seller deviations are ordinary Nash unilateral
//! deviations at fixed `p^D*` and `τ*_{¬i}`.

use crate::allocation::allocate;
use crate::error::Result;
use crate::params::MarketParams;
use crate::profit::{broker_profit, buyer_profit, seller_profit, total_dataset_quality};
use crate::stage1::{buyer_profit_at, p_m_numeric, p_m_star};
use crate::stage2::{broker_profit_at, p_d_numeric, p_d_star};
use crate::stage3::{tau_direct, tau_mean_field, SellerNashGame};
use serde::{Deserialize, Serialize};
use share_game::best_response::BrOptions;
use share_game::verify::deviation_report;
use share_numerics::optimize::grid::maximize_scan;

/// How a solution was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveMethod {
    /// Closed forms Eq. 27 / Eq. 25 / Eq. 20.
    Analytic,
    /// Nested numerical maximization along the reaction curves.
    Numeric,
    /// Stage 1/2 closed forms with the Stage-3 mean-field approximation
    /// (Eq. 23) in place of the direct derivation.
    MeanField,
}

/// A complete market equilibrium: strategies, allocation, qualities and
/// profits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SneSolution {
    /// Buyer's product price `p^M*`.
    pub p_m: f64,
    /// Broker's data price `p^D*`.
    pub p_d: f64,
    /// Sellers' fidelities `τ*`.
    pub tau: Vec<f64>,
    /// Allocation `χ*` (Eq. 13, fractional).
    pub chi: Vec<f64>,
    /// Total dataset quality `q^D* = Σ χ_i τ_i`.
    pub q_d: f64,
    /// Product quality `q^M* = q^D*·v`.
    pub q_m: f64,
    /// Buyer profit Φ*.
    pub buyer_profit: f64,
    /// Broker profit Ω*.
    pub broker_profit: f64,
    /// Per-seller profits Ψ*.
    pub seller_profits: Vec<f64>,
    /// Solution method.
    pub method: SolveMethod,
}

fn assemble(
    params: &MarketParams,
    p_m: f64,
    p_d: f64,
    tau: Vec<f64>,
    method: SolveMethod,
) -> Result<SneSolution> {
    let m = params.m();
    let chi = if tau.iter().any(|&t| t > 0.0) {
        allocate(params.buyer.n_pieces, &params.weights, &tau)?
    } else {
        vec![0.0; m]
    };
    let q_d = total_dataset_quality(&chi, &tau);
    let q_m = q_d * params.buyer.v;
    let seller_profits = (0..m)
        .map(|i| {
            seller_profit(
                params.loss_model,
                params.sellers[i].lambda,
                p_d,
                chi[i],
                tau[i],
            )
        })
        .collect();
    Ok(SneSolution {
        p_m,
        p_d,
        q_d,
        q_m,
        buyer_profit: buyer_profit(&params.buyer, p_m, q_d),
        broker_profit: broker_profit(&params.broker, &params.buyer, p_m, p_d, q_d),
        seller_profits,
        tau,
        chi,
        method,
    })
}

/// Solve the SNE analytically by backward induction (Eqs. 27 → 25 → 20).
///
/// # Errors
/// Propagates parameter validation and stage errors.
pub fn solve(params: &MarketParams) -> Result<SneSolution> {
    params.validate()?;
    let p_m = p_m_star(params)?;
    let p_d = p_d_star(params.buyer.v, p_m);
    let tau = tau_direct(params, p_d)?;
    assemble(params, p_m, p_d, tau, SolveMethod::Analytic)
}

/// Solve the SNE with the Stage-3 mean-field approximation (Eq. 23):
/// Stage 1/2 use the closed forms (Eqs. 27/25), and the sellers respond with
/// the decoupled `τ_i* = 2p^D/(3λ_i)` instead of the coupled Eq. 20. Intended
/// for the `L = λ·χ·τ²` loss regime at large `m` (Theorem 5.1), where it is
/// O(m) and avoids the fixed-point iteration entirely.
///
/// # Errors
/// Propagates parameter validation and stage errors.
pub fn solve_mean_field(params: &MarketParams) -> Result<SneSolution> {
    params.validate()?;
    let p_m = p_m_star(params)?;
    let p_d = p_d_star(params.buyer.v, p_m);
    let tau = tau_mean_field(params, p_d)?;
    assemble(params, p_m, p_d, tau, SolveMethod::MeanField)
}

/// Solve the SNE numerically: Stage 1 scans `p^M`, Stage 2 (inside the
/// Stage-1 objective) uses Eq. 25, and a final Stage-2 refinement scans
/// `p^D` around the reaction value. Slower but correct at the `τ = 1`
/// boundary where the interior closed forms break.
///
/// # Errors
/// Propagates stage and optimizer errors.
pub fn solve_numeric(params: &MarketParams) -> Result<SneSolution> {
    params.validate()?;
    // Bracket: 4× the analytic interior solution is generous; fall back to a
    // fixed cap when the closed form is unavailable.
    let cap = p_m_star(params).map(|p| 4.0 * p).unwrap_or(1.0);
    let (p_m, _) = p_m_numeric(params, cap)?;
    let (p_d, _) = p_d_numeric(params, p_m, 2.0 * params.buyer.v * p_m.max(1e-12))?;
    let tau = tau_direct(params, p_d)?;
    assemble(params, p_m, p_d, tau, SolveMethod::Numeric)
}

/// Def. 4.2 verification report: the best unilateral improvement each party
/// could achieve (values ≤ ε certify an ε-SNE).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SneVerification {
    /// Buyer's best gain from deviating in `p^M` (broker and sellers
    /// re-react per Eqs. 25/20).
    pub buyer_gain: f64,
    /// Broker's best gain from deviating in `p^D` (sellers re-react per
    /// Eq. 20; buyer fixed at `p^M*`).
    pub broker_gain: f64,
    /// Largest seller gain from a unilateral τ deviation (others fixed).
    pub max_seller_gain: f64,
}

impl SneVerification {
    /// Largest gain across all parties.
    pub fn max_gain(&self) -> f64 {
        self.buyer_gain
            .max(self.broker_gain)
            .max(self.max_seller_gain)
    }

    /// `true` when no party can improve by more than `epsilon`.
    pub fn is_equilibrium(&self, epsilon: f64) -> bool {
        self.max_gain() <= epsilon
    }
}

/// Verify a solution against Def. 4.2 by deviation search.
///
/// # Errors
/// Propagates stage and optimizer errors.
pub fn verify(params: &MarketParams, sol: &SneSolution) -> Result<SneVerification> {
    // Buyer deviation along the reaction curve.
    let buyer_obj = |p_m: f64| buyer_profit_at(params, p_m).unwrap_or(f64::NEG_INFINITY);
    let (_, best_buyer) = maximize_scan(buyer_obj, 0.0, (4.0 * sol.p_m).max(1e-6), 96, 1e-12)?;
    let buyer_gain = best_buyer - sol.buyer_profit;

    // Broker deviation along the sellers' reaction curve.
    let broker_obj = |p_d: f64| broker_profit_at(params, sol.p_m, p_d).unwrap_or(f64::NEG_INFINITY);
    let (_, best_broker) = maximize_scan(broker_obj, 0.0, (4.0 * sol.p_d).max(1e-6), 96, 1e-12)?;
    let broker_gain = best_broker - sol.broker_profit;

    // Seller Nash deviations at fixed p^D*.
    let game = SellerNashGame::new(params, sol.p_d);
    let report = deviation_report(&game, &sol.tau, BrOptions::default())?;
    Ok(SneVerification {
        buyer_gain,
        broker_gain,
        max_seller_gain: report.max_gain(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn analytic_solution_is_consistent() {
        let params = market(100, 1);
        let s = solve(&params).unwrap();
        assert_eq!(s.method, SolveMethod::Analytic);
        assert_eq!(s.tau.len(), 100);
        assert_eq!(s.chi.len(), 100);
        // Eq. 25 relation.
        assert!((s.p_d - params.buyer.v * s.p_m / 2.0).abs() < 1e-15);
        // Allocation covers N.
        assert!((s.chi.iter().sum::<f64>() - 500.0).abs() < 1e-9);
        // Quality identities.
        assert!((s.q_m - s.q_d * params.buyer.v).abs() < 1e-12);
        // Fidelities feasible.
        assert!(s.tau.iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn paper_scale_equilibrium_magnitudes() {
        // §6.2 reports p^M* = 0.036, p^D* = 0.014, τ₁* = 0.001 under random
        // λ draws; check the same orders of magnitude.
        let params = market(100, 2);
        let s = solve(&params).unwrap();
        assert!((0.005..0.2).contains(&s.p_m), "p^M* = {}", s.p_m);
        assert!((0.002..0.08).contains(&s.p_d), "p^D* = {}", s.p_d);
        let t_mean = s.tau.iter().sum::<f64>() / 100.0;
        assert!((1e-4..0.1).contains(&t_mean), "mean tau = {t_mean}");
    }

    #[test]
    fn all_parties_profit_at_equilibrium() {
        let params = market(100, 3);
        let s = solve(&params).unwrap();
        assert!(s.buyer_profit > 0.0, "buyer {}", s.buyer_profit);
        assert!(s.broker_profit > 0.0, "broker {}", s.broker_profit);
        for (i, &p) in s.seller_profits.iter().enumerate() {
            assert!(p >= -1e-12, "seller {i} profit {p}");
        }
    }

    #[test]
    fn verification_certifies_equilibrium() {
        let params = market(30, 4);
        let s = solve(&params).unwrap();
        let v = verify(&params, &s).unwrap();
        // Numerical deviation search may find O(tol) improvements only.
        assert!(
            v.is_equilibrium(1e-6 * (1.0 + s.buyer_profit.abs())),
            "gains: {v:?}"
        );
    }

    #[test]
    fn verification_rejects_perturbed_solution() {
        let params = market(30, 5);
        let mut s = solve(&params).unwrap();
        s.p_m *= 2.0; // sabotage the buyer strategy
        s.buyer_profit = buyer_profit_at(&params, s.p_m).unwrap();
        let v = verify(&params, &s).unwrap();
        assert!(v.buyer_gain > 1e-3, "expected large buyer gain: {v:?}");
    }

    #[test]
    fn numeric_agrees_with_analytic() {
        let params = market(20, 6);
        let a = solve(&params).unwrap();
        let n = solve_numeric(&params).unwrap();
        assert_eq!(n.method, SolveMethod::Numeric);
        assert!(
            (a.p_m - n.p_m).abs() < 2e-3 * a.p_m,
            "p_m {} vs {}",
            a.p_m,
            n.p_m
        );
        assert!(
            (a.p_d - n.p_d).abs() < 5e-3 * a.p_d,
            "p_d {} vs {}",
            a.p_d,
            n.p_d
        );
        assert!((a.buyer_profit - n.buyer_profit).abs() < 1e-5 * a.buyer_profit.abs());
    }

    #[test]
    fn mean_field_solution_matches_eq23_reaction() {
        let mut params = market(50, 11);
        params.loss_model = crate::params::LossModel::LinearChi;
        let s = solve_mean_field(&params).unwrap();
        assert_eq!(s.method, SolveMethod::MeanField);
        // Stage 1/2 closed forms still apply.
        assert!((s.p_d - params.buyer.v * s.p_m / 2.0).abs() < 1e-15);
        // Eq. 23: τ_i* = 2p^D/(3λ_i), clamped to [0, 1].
        for (t, seller) in s.tau.iter().zip(&params.sellers) {
            let expect = (2.0 * s.p_d / (3.0 * seller.lambda)).clamp(0.0, 1.0);
            assert!((t - expect).abs() < 1e-12, "tau {t} vs {expect}");
        }
        assert!((s.q_m - s.q_d * params.buyer.v).abs() < 1e-12);
    }

    #[test]
    fn payment_conservation() {
        // Buyer payment equals broker revenue; broker compensation equals
        // the sum of seller revenues.
        let params = market(50, 7);
        let s = solve(&params).unwrap();
        let buyer_payment = s.p_m * s.q_m;
        let compensations: f64 = s.chi.iter().zip(&s.tau).map(|(c, t)| s.p_d * c * t).sum();
        let cost = crate::profit::translog_cost(
            &params.broker,
            params.buyer.n_pieces as f64,
            params.buyer.v,
        );
        assert!(
            (s.broker_profit - (buyer_payment - cost - compensations)).abs() < 1e-9,
            "broker accounting inconsistent"
        );
        // Seller revenues sum to the broker's compensation outlay.
        let seller_revenue: f64 = (0..params.m()).map(|i| s.p_d * s.chi[i] * s.tau[i]).sum();
        assert!((seller_revenue - compensations).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_of_solution() {
        let params = market(5, 8);
        let s = solve(&params).unwrap();
        let js = serde_json::to_string(&s).unwrap();
        let back: SneSolution = serde_json::from_str(&js).unwrap();
        assert_eq!(back.tau.len(), 5);
        assert!((back.p_m - s.p_m).abs() < 1e-12);
    }

    #[test]
    fn single_seller_market_solves() {
        let params = market(1, 9);
        let s = solve(&params).unwrap();
        assert_eq!(s.tau.len(), 1);
        assert!((s.chi[0] - 500.0).abs() < 1e-9);
    }
}
