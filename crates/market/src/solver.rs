//! Backward-induction SNE solver (paper §5.1) and Def. 4.2 verification.
//!
//! [`solve`] composes the three closed forms — Eq. 27 (buyer), Eq. 25
//! (broker), Eq. 20 (sellers) — into the full optimal strategy profile
//! `⟨p^M*, p^D*, τ*⟩` plus the induced allocation, qualities and profits.
//! [`solve_numeric`] replaces the Stage-1/2 closed forms with nested
//! numerical maximization along the true (clamp-aware) reaction curves; it
//! agrees with the analytic path in the interior regime and stays correct at
//! the `τ = 1` boundary.
//!
//! [`verify`] checks the Stackelberg-Nash Equilibrium conditions of
//! Def. 4.2: deviations of the buyer and the broker are evaluated against
//! the lower stages' *reaction expressions* (as in the paper's §5.1.4
//! existence argument), and seller deviations are ordinary Nash unilateral
//! deviations at fixed `p^D*` and `τ*_{¬i}`.

use crate::allocation::allocate;
use crate::error::Result;
use crate::meanfield::theorem51_bounds;
use crate::params::MarketParams;
use crate::profit::{broker_profit, buyer_profit, seller_profit, total_dataset_quality};
use crate::stage1::{buyer_profit_at, p_m_numeric, p_m_numeric_bracketed, p_m_star};
use crate::stage2::{broker_profit_at, p_d_numeric, p_d_numeric_bracketed, p_d_star};
use crate::stage3::{tau_direct, tau_mean_field, SellerNashGame};
use serde::{Deserialize, Serialize};
use share_game::best_response::BrOptions;
use share_game::verify::deviation_report;
use share_numerics::optimize::grid::maximize_scan;
use share_obs::{self as obs, Level};

/// Tracing target for the solver's per-stage spans.
const TARGET: &str = "share_market::solver";

/// How a solution was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveMethod {
    /// Closed forms Eq. 27 / Eq. 25 / Eq. 20.
    Analytic,
    /// Nested numerical maximization along the reaction curves.
    Numeric,
    /// Stage 1/2 closed forms with the Stage-3 mean-field approximation
    /// (Eq. 23) in place of the direct derivation.
    MeanField,
}

/// A complete market equilibrium: strategies, allocation, qualities and
/// profits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SneSolution {
    /// Buyer's product price `p^M*`.
    pub p_m: f64,
    /// Broker's data price `p^D*`.
    pub p_d: f64,
    /// Sellers' fidelities `τ*`.
    pub tau: Vec<f64>,
    /// Allocation `χ*` (Eq. 13, fractional).
    pub chi: Vec<f64>,
    /// Total dataset quality `q^D* = Σ χ_i τ_i`.
    pub q_d: f64,
    /// Product quality `q^M* = q^D*·v`.
    pub q_m: f64,
    /// Buyer profit Φ*.
    pub buyer_profit: f64,
    /// Broker profit Ω*.
    pub broker_profit: f64,
    /// Per-seller profits Ψ*.
    pub seller_profits: Vec<f64>,
    /// Solution method.
    pub method: SolveMethod,
}

fn assemble(
    params: &MarketParams,
    p_m: f64,
    p_d: f64,
    tau: Vec<f64>,
    method: SolveMethod,
) -> Result<SneSolution> {
    let m = params.m();
    let chi = if tau.iter().any(|&t| t > 0.0) {
        allocate(params.buyer.n_pieces, &params.weights, &tau)?
    } else {
        vec![0.0; m]
    };
    let q_d = total_dataset_quality(&chi, &tau);
    let q_m = q_d * params.buyer.v;
    let seller_profits = (0..m)
        .map(|i| {
            seller_profit(
                params.loss_model,
                params.sellers[i].lambda,
                p_d,
                chi[i],
                tau[i],
            )
        })
        .collect();
    Ok(SneSolution {
        p_m,
        p_d,
        q_d,
        q_m,
        buyer_profit: buyer_profit(&params.buyer, p_m, q_d),
        broker_profit: broker_profit(&params.broker, &params.buyer, p_m, p_d, q_d),
        seller_profits,
        tau,
        chi,
        method,
    })
}

/// Wall-clock nanoseconds spent in each backward-induction stage of one
/// solve. Produced by the `*_timed` solver variants; the serving engine
/// feeds these into its per-stage latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Stage 1 (buyer price `p^M`) time, nanoseconds.
    pub stage1_ns: u64,
    /// Stage 2 (broker price `p^D`) time, nanoseconds.
    pub stage2_ns: u64,
    /// Stage 3 (seller fidelities `τ`) time, nanoseconds.
    pub stage3_ns: u64,
}

impl StageTimings {
    /// Total time across the three stages, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.stage1_ns
            .saturating_add(self.stage2_ns)
            .saturating_add(self.stage3_ns)
    }
}

/// Solve the SNE analytically by backward induction (Eqs. 27 → 25 → 20).
///
/// # Errors
/// Propagates parameter validation and stage errors.
pub fn solve(params: &MarketParams) -> Result<SneSolution> {
    solve_timed(params).map(|(s, _)| s)
}

/// [`solve`] with per-stage wall-clock timings and `stage1`/`stage2`/
/// `stage3` tracing spans (target `share_market::solver`, debug level).
///
/// # Errors
/// Same as [`solve`].
pub fn solve_timed(params: &MarketParams) -> Result<(SneSolution, StageTimings)> {
    params.validate()?;
    let mut sp = obs::span(Level::Debug, TARGET, "stage1");
    let p_m = p_m_star(params)?;
    sp.record("p_m", p_m);
    let stage1_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage2");
    let p_d = p_d_star(params.buyer.v, p_m);
    sp.record("p_d", p_d);
    let stage2_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage3");
    let tau = tau_direct(params, p_d)?;
    sp.record("m", params.m());
    let stage3_ns = sp.finish();

    let timings = StageTimings {
        stage1_ns,
        stage2_ns,
        stage3_ns,
    };
    Ok((
        assemble(params, p_m, p_d, tau, SolveMethod::Analytic)?,
        timings,
    ))
}

/// Solve the SNE with the Stage-3 mean-field approximation (Eq. 23):
/// Stage 1/2 use the closed forms (Eqs. 27/25), and the sellers respond with
/// the decoupled `τ_i* = 2p^D/(3λ_i)` instead of the coupled Eq. 20. Intended
/// for the `L = λ·χ·τ²` loss regime at large `m` (Theorem 5.1), where it is
/// O(m) and avoids the fixed-point iteration entirely.
///
/// # Errors
/// Propagates parameter validation and stage errors.
pub fn solve_mean_field(params: &MarketParams) -> Result<SneSolution> {
    solve_mean_field_timed(params).map(|(s, _)| s)
}

/// [`solve_mean_field`] with per-stage timings and tracing spans. The
/// Stage-3 span also emits a `mean_field_bound` event carrying the
/// Theorem 5.1 approximation-error band for this market size, so traces
/// show how much accuracy the O(m) shortcut trades away.
///
/// # Errors
/// Same as [`solve_mean_field`].
pub fn solve_mean_field_timed(params: &MarketParams) -> Result<(SneSolution, StageTimings)> {
    params.validate()?;
    let mut sp = obs::span(Level::Debug, TARGET, "stage1");
    let p_m = p_m_star(params)?;
    sp.record("p_m", p_m);
    let stage1_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage2");
    let p_d = p_d_star(params.buyer.v, p_m);
    sp.record("p_d", p_d);
    let stage2_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage3");
    let tau = tau_mean_field(params, p_d)?;
    sp.record("m", params.m());
    sp.record("mean_field", true);
    let stage3_ns = sp.finish();

    if obs::enabled(Level::Debug, TARGET) {
        let m = params.m();
        let (lower, upper) = theorem51_bounds(m);
        let tau_bar_mf = params
            .weights
            .iter()
            .zip(&tau)
            .map(|(w, t)| w * t)
            .sum::<f64>()
            / m as f64;
        share_obs::obs_debug!(
            target: TARGET,
            "mean_field_bound",
            "m" => m,
            "tau_bar_mf" => tau_bar_mf,
            "bound_lower" => lower,
            "bound_upper" => upper
        );
    }

    let timings = StageTimings {
        stage1_ns,
        stage2_ns,
        stage3_ns,
    };
    Ok((
        assemble(params, p_m, p_d, tau, SolveMethod::MeanField)?,
        timings,
    ))
}

/// Solve the SNE numerically: Stage 1 scans `p^M`, Stage 2 (inside the
/// Stage-1 objective) uses Eq. 25, and a final Stage-2 refinement scans
/// `p^D` around the reaction value. Slower but correct at the `τ = 1`
/// boundary where the interior closed forms break.
///
/// # Errors
/// Propagates stage and optimizer errors.
pub fn solve_numeric(params: &MarketParams) -> Result<SneSolution> {
    solve_numeric_timed(params).map(|(s, _)| s)
}

/// [`solve_numeric`] with per-stage timings and tracing spans. Stage 1/2
/// additionally emit golden-section iteration counts and bracketing
/// failures from inside [`p_m_numeric`]/[`p_d_numeric`].
///
/// # Errors
/// Same as [`solve_numeric`].
pub fn solve_numeric_timed(params: &MarketParams) -> Result<(SneSolution, StageTimings)> {
    solve_numeric_warm(params, None).map(|(s, t, _)| (s, t))
}

/// A price hint for warm-starting the numeric solver, typically the
/// equilibrium of a previously solved *neighboring* market (the serving
/// engine finds neighbors by coarsening its `CacheKey` quantization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// The neighbor's Stage-1 price `p^M*`.
    pub p_m: f64,
    /// The neighbor's Stage-2 price `p^D*`.
    pub p_d: f64,
}

/// What the warm-started numeric path actually did — whether the hint was
/// usable, whether it had to fall back to the cold full bracket, and how
/// much objective work the Stage-1/2 scans performed (warm path only; the
/// cold path reports zeros because [`p_m_numeric`] does its own tracing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumericStats {
    /// A finite positive hint was supplied and the narrowed brackets ran.
    pub used_hint: bool,
    /// A narrowed scan hit its bracket edge, so the stage was re-solved
    /// over the cold full bracket (the hint was too far from this market's
    /// optimum to be trusted).
    pub fell_back: bool,
    /// Total objective evaluations on the Stage-1/2 grids (warm path).
    pub grid_evals: u64,
    /// Total golden-section refinement iterations (warm path).
    pub golden_iterations: u64,
}

/// Half-width factor of the warm bracket: scan `[0.5·hint, 1.5·hint]`.
const WARM_BRACKET: f64 = 0.5;
/// Grid density of the warm Stage-1 scan (cold uses 96 points).
const WARM_GRID_STAGE1: usize = 24;
/// Grid density of the warm Stage-2 scan (cold uses 64 points).
const WARM_GRID_STAGE2: usize = 16;

/// Is `x` within one grid cell of the bracket `[lo, hi]`'s edge? A warm
/// maximizer there means the true optimum may lie outside the narrowed
/// bracket, so the caller must fall back to the cold full scan.
fn near_bracket_edge(x: f64, lo: f64, hi: f64, n_grid: usize) -> bool {
    let cell = (hi - lo) / (n_grid.max(3) - 1) as f64;
    x <= lo + cell || x >= hi - cell
}

/// [`solve_numeric_timed`] with an optional warm-start hint. With a usable
/// hint the Stage-1/2 scans search narrow brackets `[0.5·hint, 1.5·hint]`
/// at reduced grid density instead of the cold full brackets — 4× fewer
/// grid evaluations (40 vs 160), each of which costs a full Stage-3
/// seller response. Concavity of both stage objectives makes this sound: if the
/// optimum lies inside the narrowed bracket the scan finds it to the same
/// golden-section tolerance as the cold path; if the scan instead lands
/// within one grid cell of a bracket edge the optimum may lie outside, and
/// the stage transparently re-solves over the cold full bracket
/// (`fell_back` reports this). `hint = None` is exactly the cold
/// [`solve_numeric_timed`] path.
///
/// # Errors
/// Same as [`solve_numeric`].
pub fn solve_numeric_warm(
    params: &MarketParams,
    hint: Option<WarmStart>,
) -> Result<(SneSolution, StageTimings, NumericStats)> {
    params.validate()?;
    let mut stats = NumericStats::default();
    let hint = hint.filter(|h| {
        h.p_m.is_finite() && h.p_m > 0.0 && h.p_d.is_finite() && h.p_d > 0.0
    });

    let mut sp = obs::span(Level::Debug, TARGET, "stage1");
    let p_m = match hint {
        Some(h) => {
            stats.used_hint = true;
            let (lo, hi) = ((1.0 - WARM_BRACKET) * h.p_m, (1.0 + WARM_BRACKET) * h.p_m);
            let (x, _, s1) = p_m_numeric_bracketed(params, lo, hi, WARM_GRID_STAGE1)?;
            stats.grid_evals += s1.grid_evals as u64;
            stats.golden_iterations += s1.golden_iterations as u64;
            if near_bracket_edge(x, lo, hi, WARM_GRID_STAGE1) {
                stats.fell_back = true;
                let cap = p_m_star(params).map(|p| 4.0 * p).unwrap_or(1.0);
                p_m_numeric(params, cap)?.0
            } else {
                x
            }
        }
        None => {
            // Bracket: 4× the analytic interior solution is generous; fall
            // back to a fixed cap when the closed form is unavailable.
            let cap = p_m_star(params).map(|p| 4.0 * p).unwrap_or(1.0);
            p_m_numeric(params, cap)?.0
        }
    };
    sp.record("p_m", p_m);
    let stage1_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage2");
    let p_d = match hint {
        // Only trust the Stage-2 hint when Stage 1 stayed inside its warm
        // bracket: a Stage-1 fallback means the neighbor's prices do not
        // describe this market.
        Some(h) if !stats.fell_back => {
            let (lo, hi) = ((1.0 - WARM_BRACKET) * h.p_d, (1.0 + WARM_BRACKET) * h.p_d);
            let (x, _, s2) = p_d_numeric_bracketed(params, p_m, lo, hi, WARM_GRID_STAGE2)?;
            stats.grid_evals += s2.grid_evals as u64;
            stats.golden_iterations += s2.golden_iterations as u64;
            if near_bracket_edge(x, lo, hi, WARM_GRID_STAGE2) {
                stats.fell_back = true;
                p_d_numeric(params, p_m, 2.0 * params.buyer.v * p_m.max(1e-12))?.0
            } else {
                x
            }
        }
        _ => p_d_numeric(params, p_m, 2.0 * params.buyer.v * p_m.max(1e-12))?.0,
    };
    sp.record("p_d", p_d);
    let stage2_ns = sp.finish();

    let mut sp = obs::span(Level::Debug, TARGET, "stage3");
    let tau = tau_direct(params, p_d)?;
    sp.record("m", params.m());
    let stage3_ns = sp.finish();

    let timings = StageTimings {
        stage1_ns,
        stage2_ns,
        stage3_ns,
    };
    Ok((
        assemble(params, p_m, p_d, tau, SolveMethod::Numeric)?,
        timings,
        stats,
    ))
}

/// Def. 4.2 verification report: the best unilateral improvement each party
/// could achieve (values ≤ ε certify an ε-SNE).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SneVerification {
    /// Buyer's best gain from deviating in `p^M` (broker and sellers
    /// re-react per Eqs. 25/20).
    pub buyer_gain: f64,
    /// Broker's best gain from deviating in `p^D` (sellers re-react per
    /// Eq. 20; buyer fixed at `p^M*`).
    pub broker_gain: f64,
    /// Largest seller gain from a unilateral τ deviation (others fixed).
    pub max_seller_gain: f64,
}

impl SneVerification {
    /// Largest gain across all parties.
    pub fn max_gain(&self) -> f64 {
        self.buyer_gain
            .max(self.broker_gain)
            .max(self.max_seller_gain)
    }

    /// `true` when no party can improve by more than `epsilon`.
    pub fn is_equilibrium(&self, epsilon: f64) -> bool {
        self.max_gain() <= epsilon
    }
}

/// Verify a solution against Def. 4.2 by deviation search.
///
/// # Errors
/// Propagates stage and optimizer errors.
pub fn verify(params: &MarketParams, sol: &SneSolution) -> Result<SneVerification> {
    // Buyer deviation along the reaction curve.
    let buyer_obj = |p_m: f64| buyer_profit_at(params, p_m).unwrap_or(f64::NEG_INFINITY);
    let (_, best_buyer) = maximize_scan(buyer_obj, 0.0, (4.0 * sol.p_m).max(1e-6), 96, 1e-12)?;
    let buyer_gain = best_buyer - sol.buyer_profit;

    // Broker deviation along the sellers' reaction curve.
    let broker_obj = |p_d: f64| broker_profit_at(params, sol.p_m, p_d).unwrap_or(f64::NEG_INFINITY);
    let (_, best_broker) = maximize_scan(broker_obj, 0.0, (4.0 * sol.p_d).max(1e-6), 96, 1e-12)?;
    let broker_gain = best_broker - sol.broker_profit;

    // Seller Nash deviations at fixed p^D*.
    let game = SellerNashGame::new(params, sol.p_d);
    let report = deviation_report(&game, &sol.tau, BrOptions::default())?;
    Ok(SneVerification {
        buyer_gain,
        broker_gain,
        max_seller_gain: report.max_gain(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn analytic_solution_is_consistent() {
        let params = market(100, 1);
        let s = solve(&params).unwrap();
        assert_eq!(s.method, SolveMethod::Analytic);
        assert_eq!(s.tau.len(), 100);
        assert_eq!(s.chi.len(), 100);
        // Eq. 25 relation.
        assert!((s.p_d - params.buyer.v * s.p_m / 2.0).abs() < 1e-15);
        // Allocation covers N.
        assert!((s.chi.iter().sum::<f64>() - 500.0).abs() < 1e-9);
        // Quality identities.
        assert!((s.q_m - s.q_d * params.buyer.v).abs() < 1e-12);
        // Fidelities feasible.
        assert!(s.tau.iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn paper_scale_equilibrium_magnitudes() {
        // §6.2 reports p^M* = 0.036, p^D* = 0.014, τ₁* = 0.001 under random
        // λ draws; check the same orders of magnitude.
        let params = market(100, 2);
        let s = solve(&params).unwrap();
        assert!((0.005..0.2).contains(&s.p_m), "p^M* = {}", s.p_m);
        assert!((0.002..0.08).contains(&s.p_d), "p^D* = {}", s.p_d);
        let t_mean = s.tau.iter().sum::<f64>() / 100.0;
        assert!((1e-4..0.1).contains(&t_mean), "mean tau = {t_mean}");
    }

    #[test]
    fn all_parties_profit_at_equilibrium() {
        let params = market(100, 3);
        let s = solve(&params).unwrap();
        assert!(s.buyer_profit > 0.0, "buyer {}", s.buyer_profit);
        assert!(s.broker_profit > 0.0, "broker {}", s.broker_profit);
        for (i, &p) in s.seller_profits.iter().enumerate() {
            assert!(p >= -1e-12, "seller {i} profit {p}");
        }
    }

    #[test]
    fn verification_certifies_equilibrium() {
        let params = market(30, 4);
        let s = solve(&params).unwrap();
        let v = verify(&params, &s).unwrap();
        // Numerical deviation search may find O(tol) improvements only.
        assert!(
            v.is_equilibrium(1e-6 * (1.0 + s.buyer_profit.abs())),
            "gains: {v:?}"
        );
    }

    #[test]
    fn verification_rejects_perturbed_solution() {
        let params = market(30, 5);
        let mut s = solve(&params).unwrap();
        s.p_m *= 2.0; // sabotage the buyer strategy
        s.buyer_profit = buyer_profit_at(&params, s.p_m).unwrap();
        let v = verify(&params, &s).unwrap();
        assert!(v.buyer_gain > 1e-3, "expected large buyer gain: {v:?}");
    }

    #[test]
    fn numeric_agrees_with_analytic() {
        let params = market(20, 6);
        let a = solve(&params).unwrap();
        let n = solve_numeric(&params).unwrap();
        assert_eq!(n.method, SolveMethod::Numeric);
        assert!(
            (a.p_m - n.p_m).abs() < 2e-3 * a.p_m,
            "p_m {} vs {}",
            a.p_m,
            n.p_m
        );
        assert!(
            (a.p_d - n.p_d).abs() < 5e-3 * a.p_d,
            "p_d {} vs {}",
            a.p_d,
            n.p_d
        );
        assert!((a.buyer_profit - n.buyer_profit).abs() < 1e-5 * a.buyer_profit.abs());
    }

    #[test]
    fn mean_field_solution_matches_eq23_reaction() {
        let mut params = market(50, 11);
        params.loss_model = crate::params::LossModel::LinearChi;
        let s = solve_mean_field(&params).unwrap();
        assert_eq!(s.method, SolveMethod::MeanField);
        // Stage 1/2 closed forms still apply.
        assert!((s.p_d - params.buyer.v * s.p_m / 2.0).abs() < 1e-15);
        // Eq. 23: τ_i* = 2p^D/(3λ_i), clamped to [0, 1].
        for (t, seller) in s.tau.iter().zip(&params.sellers) {
            let expect = (2.0 * s.p_d / (3.0 * seller.lambda)).clamp(0.0, 1.0);
            assert!((t - expect).abs() < 1e-12, "tau {t} vs {expect}");
        }
        assert!((s.q_m - s.q_d * params.buyer.v).abs() < 1e-12);
    }

    #[test]
    fn payment_conservation() {
        // Buyer payment equals broker revenue; broker compensation equals
        // the sum of seller revenues.
        let params = market(50, 7);
        let s = solve(&params).unwrap();
        let buyer_payment = s.p_m * s.q_m;
        let compensations: f64 = s.chi.iter().zip(&s.tau).map(|(c, t)| s.p_d * c * t).sum();
        let cost = crate::profit::translog_cost(
            &params.broker,
            params.buyer.n_pieces as f64,
            params.buyer.v,
        );
        assert!(
            (s.broker_profit - (buyer_payment - cost - compensations)).abs() < 1e-9,
            "broker accounting inconsistent"
        );
        // Seller revenues sum to the broker's compensation outlay.
        let seller_revenue: f64 = (0..params.m()).map(|i| s.p_d * s.chi[i] * s.tau[i]).sum();
        assert!((seller_revenue - compensations).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_of_solution() {
        let params = market(5, 8);
        let s = solve(&params).unwrap();
        let js = serde_json::to_string(&s).unwrap();
        let back: SneSolution = serde_json::from_str(&js).unwrap();
        assert_eq!(back.tau.len(), 5);
        assert!((back.p_m - s.p_m).abs() < 1e-12);
    }

    #[test]
    fn single_seller_market_solves() {
        let params = market(1, 9);
        let s = solve(&params).unwrap();
        assert_eq!(s.tau.len(), 1);
        assert!((s.chi[0] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn timed_solves_match_untimed_and_time_every_stage() {
        let params = market(40, 12);
        let plain = solve(&params).unwrap();
        let (timed, t) = solve_timed(&params).unwrap();
        assert_eq!(plain.p_m, timed.p_m);
        assert_eq!(plain.p_d, timed.p_d);
        assert_eq!(plain.tau, timed.tau);
        // Instants are monotonically measured even with tracing disabled.
        assert!(t.stage1_ns > 0 && t.stage3_ns > 0, "{t:?}");
        assert_eq!(t.total_ns(), t.stage1_ns + t.stage2_ns + t.stage3_ns);

        let (n, tn) = solve_numeric_timed(&params).unwrap();
        assert_eq!(n.method, SolveMethod::Numeric);
        assert!(tn.stage1_ns > 0);

        let (mf, tm) = solve_mean_field_timed(&params).unwrap();
        assert_eq!(mf.method, SolveMethod::MeanField);
        assert!(tm.stage3_ns > 0);
    }

    #[test]
    fn warm_start_with_good_hint_matches_cold_solve() {
        let params = market(20, 14);
        let (cold, _, cs) = solve_numeric_warm(&params, None).unwrap();
        assert!(!cs.used_hint && !cs.fell_back);
        let hint = WarmStart {
            p_m: cold.p_m,
            p_d: cold.p_d,
        };
        let (warm, _, ws) = solve_numeric_warm(&params, Some(hint)).unwrap();
        assert!(ws.used_hint, "{ws:?}");
        assert!(!ws.fell_back, "good hint must not fall back: {ws:?}");
        assert!(ws.grid_evals > 0 && ws.grid_evals < 96, "{ws:?}");
        assert!(
            (warm.p_m - cold.p_m).abs() < 1e-6 * cold.p_m,
            "p_m {} vs {}",
            warm.p_m,
            cold.p_m
        );
        assert!(
            (warm.p_d - cold.p_d).abs() < 1e-6 * cold.p_d,
            "p_d {} vs {}",
            warm.p_d,
            cold.p_d
        );
    }

    #[test]
    fn warm_start_with_bad_hint_falls_back_to_cold_answer() {
        let params = market(20, 15);
        let (cold, _, _) = solve_numeric_warm(&params, None).unwrap();
        // A hint two orders of magnitude off pushes the narrowed scan to its
        // bracket edge; the solver must detect that and re-solve cold.
        let hint = WarmStart {
            p_m: 100.0 * cold.p_m,
            p_d: 100.0 * cold.p_d,
        };
        let (warm, _, ws) = solve_numeric_warm(&params, Some(hint)).unwrap();
        assert!(ws.used_hint && ws.fell_back, "{ws:?}");
        assert!(
            (warm.p_m - cold.p_m).abs() < 1e-6 * cold.p_m.max(1e-12),
            "p_m {} vs {}",
            warm.p_m,
            cold.p_m
        );
    }

    #[test]
    fn warm_start_ignores_nonfinite_hints() {
        let params = market(10, 16);
        let bad = WarmStart {
            p_m: f64::NAN,
            p_d: 0.01,
        };
        let (_, _, stats) = solve_numeric_warm(&params, Some(bad)).unwrap();
        assert!(!stats.used_hint && !stats.fell_back);
    }

    #[test]
    fn solver_emits_stage_spans_when_tracing_enabled() {
        use share_obs::subscriber::MemorySubscriber;
        use std::sync::Arc;
        // Global dispatcher state: install, solve, then reset. Runs in its
        // own process group of assertions; tolerant of concurrent tests by
        // filtering on this target only.
        let sink = Arc::new(MemorySubscriber::new());
        share_obs::add_subscriber(sink.clone());
        share_obs::set_filter(share_obs::EnvFilter::parse("share_market::solver=debug"));
        let params = market(10, 13);
        let _ = solve_mean_field_timed(&params).unwrap();
        share_obs::clear_subscribers();
        share_obs::set_filter(share_obs::EnvFilter::off());

        let events = sink.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        for expected in ["stage1", "stage2", "stage3", "mean_field_bound"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        let bound = events
            .iter()
            .find(|e| e.name == "mean_field_bound" && e.field_f64("m") == Some(10.0))
            .expect("mean_field_bound event for this market");
        let (lo, hi) = theorem51_bounds(10);
        assert_eq!(bound.field_f64("bound_lower"), Some(lo));
        assert_eq!(bound.field_f64("bound_upper"), Some(hi));
        let stage1 = events.iter().find(|e| e.name == "stage1").unwrap();
        assert!(stage1.elapsed_ns.is_some());
        assert!(stage1.field_f64("p_m").unwrap() > 0.0);
    }
}
