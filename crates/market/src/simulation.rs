//! Long-horizon market simulation: a configurable population of buyers
//! arriving "one at a time" (paper §4.1) at a persistent [`TradingMarket`].
//!
//! Buyers are drawn from uniform ranges over their demand and utility
//! parameters; each arrival re-solves the SNE, trades, and (optionally)
//! refreshes the Shapley weights. The run returns the full ledger plus the
//! [`analytics::MarketReport`](crate::analytics::MarketReport) an operator
//! would monitor — the harness behind longitudinal questions the one-shot
//! experiments cannot answer (weight convergence, revenue concentration,
//! performance drift).

use crate::analytics::{report, MarketReport};
use crate::dynamics::{RoundOptions, TradingMarket};
use crate::error::{MarketError, Result};
use crate::params::BuyerParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Uniform ranges the buyer population is drawn from.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BuyerPopulation {
    /// Demanded data quantity `N` (inclusive range).
    pub n_pieces: (usize, usize),
    /// Demanded performance `v`.
    pub v: (f64, f64),
    /// Data-quality concern `θ₁` (θ₂ = 1 − θ₁).
    pub theta1: (f64, f64),
    /// Data-quality sensitivity `ρ₁`.
    pub rho1: (f64, f64),
    /// Performance sensitivity `ρ₂`.
    pub rho2: (f64, f64),
}

impl Default for BuyerPopulation {
    fn default() -> Self {
        Self {
            n_pieces: (200, 600),
            v: (0.5, 0.95),
            theta1: (0.3, 0.7),
            rho1: (0.2, 2.0),
            rho2: (100.0, 400.0),
        }
    }
}

impl BuyerPopulation {
    fn validate(&self) -> Result<()> {
        let ranges_ok = self.n_pieces.0 >= 1
            && self.n_pieces.0 <= self.n_pieces.1
            && self.v.0 > 0.0
            && self.v.0 <= self.v.1
            && self.theta1.0 > 0.0
            && self.theta1.1 < 1.0
            && self.theta1.0 <= self.theta1.1
            && self.rho1.0 > 0.0
            && self.rho1.0 <= self.rho1.1
            && self.rho2.0 > 0.0
            && self.rho2.0 <= self.rho2.1;
        if ranges_ok {
            Ok(())
        } else {
            Err(MarketError::InvalidParameter {
                name: "BuyerPopulation",
                reason: "ranges must be non-empty, ordered and in-domain".to_string(),
            })
        }
    }

    /// Draw one buyer.
    fn draw(&self, rng: &mut StdRng) -> BuyerParams {
        let pick = |(lo, hi): (f64, f64), rng: &mut StdRng| {
            if lo == hi {
                lo
            } else {
                rng.random_range(lo..hi)
            }
        };
        let theta1 = pick(self.theta1, rng);
        BuyerParams {
            n_pieces: if self.n_pieces.0 == self.n_pieces.1 {
                self.n_pieces.0
            } else {
                rng.random_range(self.n_pieces.0..=self.n_pieces.1)
            },
            v: pick(self.v, rng),
            theta1,
            theta2: 1.0 - theta1,
            rho1: pick(self.rho1, rng),
            rho2: pick(self.rho2, rng),
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Buyers to process.
    pub arrivals: usize,
    /// Buyer-population ranges.
    pub population: BuyerPopulation,
    /// Per-round trading options.
    pub round: RoundOptions,
    /// RNG seed for buyer draws.
    pub seed: u64,
}

/// Outcome of a simulation: the operator report plus per-arrival traces.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Aggregate report over the whole horizon.
    pub report: MarketReport,
    /// Per-arrival `(p^M*, p^D*, measured performance)`.
    pub trace: Vec<(f64, f64, f64)>,
}

/// Run `arrivals` buyer arrivals against `market`.
///
/// # Errors
/// Propagates population validation, buyer validation and round errors.
pub fn simulate(market: &mut TradingMarket, config: SimulationConfig) -> Result<SimulationOutcome> {
    config.population.validate()?;
    if config.arrivals == 0 {
        return Err(MarketError::InvalidParameter {
            name: "arrivals",
            reason: "must be positive".to_string(),
        });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut trace = Vec::with_capacity(config.arrivals);
    for _ in 0..config.arrivals {
        let buyer = config.population.draw(&mut rng);
        market.set_buyer(buyer)?;
        let rep = market.run_round(config.round)?;
        trace.push((rep.solution.p_m, rep.solution.p_d, rep.measured_performance));
    }
    Ok(SimulationOutcome {
        report: report(market.ledger())?,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::WeightUpdate;
    use crate::fast_shapley::FastShapleyOptions;
    use crate::params::MarketParams;
    use share_datagen::ccpp::{feature_domains, generate, target_domain, CcppConfig};
    use share_datagen::partition::partition_equal;

    fn build_market(m: usize) -> TradingMarket {
        let data = generate(CcppConfig {
            rows: m * 400,
            seed: 3,
            ..CcppConfig::default()
        })
        .unwrap();
        let test = generate(CcppConfig {
            rows: 300,
            seed: 4,
            ..CcppConfig::default()
        })
        .unwrap();
        let sellers = partition_equal(&data, m).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let params = MarketParams::paper_defaults(m, &mut rng);
        TradingMarket::new(
            params,
            sellers,
            test,
            feature_domains().to_vec(),
            target_domain(),
        )
        .unwrap()
    }

    fn config(arrivals: usize) -> SimulationConfig {
        SimulationConfig {
            arrivals,
            population: BuyerPopulation {
                n_pieces: (100, 300),
                ..BuyerPopulation::default()
            },
            round: RoundOptions {
                weight_update: WeightUpdate::FastLinReg(FastShapleyOptions {
                    permutations: 10,
                    seed: 1,
                    ridge: 1e-6,
                }),
                seed: 2,
                ..RoundOptions::default()
            },
            seed: 9,
        }
    }

    #[test]
    fn simulation_processes_all_arrivals() {
        let mut market = build_market(8);
        let out = simulate(&mut market, config(6)).unwrap();
        assert_eq!(out.trace.len(), 6);
        assert_eq!(out.report.rounds, 6);
        assert_eq!(market.ledger().len(), 6);
        // Prices vary with heterogeneous buyers.
        let p_ms: Vec<f64> = out.trace.iter().map(|t| t.0).collect();
        let spread = p_ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - p_ms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-6, "buyer heterogeneity should move prices");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = build_market(6);
        let mut b = build_market(6);
        let oa = simulate(&mut a, config(4)).unwrap();
        let ob = simulate(&mut b, config(4)).unwrap();
        assert_eq!(oa.trace, ob.trace);
    }

    #[test]
    fn report_totals_accumulate() {
        let mut market = build_market(5);
        let out = simulate(&mut market, config(3)).unwrap();
        assert!(out.report.total_buyer_payments > 0.0);
        assert!((out.report.final_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(out.report.revenue_gini >= 0.0 && out.report.revenue_gini < 1.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut market = build_market(4);
        let mut bad = config(0);
        assert!(simulate(&mut market, bad).is_err());
        bad = config(2);
        bad.population.theta1 = (0.0, 0.5); // theta1 must be > 0
        assert!(simulate(&mut market, bad).is_err());
        let mut inverted = config(2);
        inverted.population.v = (0.9, 0.5);
        assert!(simulate(&mut market, inverted).is_err());
    }

    #[test]
    fn degenerate_point_population_works() {
        let mut market = build_market(4);
        let mut cfg = config(3);
        cfg.population = BuyerPopulation {
            n_pieces: (150, 150),
            v: (0.8, 0.8),
            theta1: (0.5, 0.5),
            rho1: (0.5, 0.5),
            rho2: (250.0, 250.0),
        };
        let out = simulate(&mut market, cfg).unwrap();
        // Identical buyers ⇒ identical p^M across arrivals (weights don't
        // move p^M, which depends only on λ aggregates).
        let first = out.trace[0].0;
        for t in &out.trace {
            assert!((t.0 - first).abs() < 1e-12);
        }
    }
}
