//! Seller selection: the allocation rule of paper Eq. 13.
//!
//! Given all sellers' fidelities, seller `i` sells
//! `χ_i = N·ω_i·τ_i / Σ_j ω_j·τ_j` data pieces — the inner Nash game's
//! outcome doubles as the seller-selection mechanism. A largest-remainder
//! integer rounding is provided for the physical data transaction
//! (fractional χ drives the analytic equilibrium; whole pieces change hands).

use crate::error::{MarketError, Result};

/// Fractional allocation `χ` (Eq. 13). The invariant `Σχ_i = N` holds
/// exactly up to floating-point rounding.
///
/// # Errors
/// - [`MarketError::NoSellers`] for empty input.
/// - [`MarketError::SellerCountMismatch`] when lengths differ.
/// - [`MarketError::InvalidParameter`] when all `ω_i·τ_i` are zero (no data
///   offered) or any entry is negative/non-finite.
pub fn allocate(n: usize, weights: &[f64], tau: &[f64]) -> Result<Vec<f64>> {
    if weights.is_empty() {
        return Err(MarketError::NoSellers);
    }
    if weights.len() != tau.len() {
        return Err(MarketError::SellerCountMismatch {
            expected: weights.len(),
            got: tau.len(),
        });
    }
    let mut denom = 0.0;
    for (i, (&w, &t)) in weights.iter().zip(tau).enumerate() {
        if !(w.is_finite() && w >= 0.0 && t.is_finite() && t >= 0.0) {
            return Err(MarketError::InvalidParameter {
                name: "weights/tau",
                reason: format!("entry {i} is negative or non-finite (w={w}, tau={t})"),
            });
        }
        denom += w * t;
    }
    if denom <= 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "tau",
            reason: "no seller offers positive weighted fidelity".to_string(),
        });
    }
    Ok(weights
        .iter()
        .zip(tau)
        .map(|(&w, &t)| n as f64 * w * t / denom)
        .collect())
}

/// Round a fractional allocation to whole pieces with the largest-remainder
/// method, preserving `Σχ_i = N` exactly.
///
/// # Errors
/// [`MarketError::InvalidParameter`] for negative or non-finite entries.
pub fn round_allocation(n: usize, chi: &[f64]) -> Result<Vec<usize>> {
    if chi.iter().any(|&c| !c.is_finite() || c < 0.0) {
        return Err(MarketError::InvalidParameter {
            name: "chi",
            reason: "entries must be non-negative and finite".to_string(),
        });
    }
    let floors: Vec<usize> = chi.iter().map(|&c| c.floor() as usize).collect();
    let assigned: usize = floors.iter().sum();
    let mut remainder = n.saturating_sub(assigned);
    // Sort sellers by fractional remainder descending; hand out leftovers.
    let mut order: Vec<usize> = (0..chi.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = chi[a] - chi[a].floor();
        let fb = chi[b] - chi[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = floors;
    for &i in order.iter().cycle().take(chi.len().max(1) * 2) {
        if remainder == 0 {
            break;
        }
        out[i] += 1;
        remainder -= 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_weighted_fidelity() {
        let chi = allocate(100, &[1.0, 1.0], &[0.75, 0.25]).unwrap();
        assert!((chi[0] - 75.0).abs() < 1e-12);
        assert!((chi[1] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn weights_matter() {
        let chi = allocate(100, &[3.0, 1.0], &[0.5, 0.5]).unwrap();
        assert!((chi[0] - 75.0).abs() < 1e-12);
    }

    #[test]
    fn sums_to_n() {
        let chi = allocate(500, &[0.2, 0.5, 0.3, 0.9], &[0.1, 0.7, 0.3, 0.2]).unwrap();
        assert!((chi.iter().sum::<f64>() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fidelity_seller_gets_nothing() {
        let chi = allocate(10, &[1.0, 1.0], &[0.0, 0.5]).unwrap();
        assert_eq!(chi[0], 0.0);
        assert_eq!(chi[1], 10.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            allocate(10, &[], &[]),
            Err(MarketError::NoSellers)
        ));
        assert!(allocate(10, &[1.0], &[0.5, 0.5]).is_err());
        assert!(allocate(10, &[1.0], &[0.0]).is_err());
        assert!(allocate(10, &[-1.0, 1.0], &[0.5, 0.5]).is_err());
        assert!(allocate(10, &[1.0, 1.0], &[f64::NAN, 0.5]).is_err());
    }

    #[test]
    fn rounding_preserves_total() {
        let chi = allocate(7, &[1.0, 1.0, 1.0], &[0.5, 0.3, 0.2]).unwrap();
        let whole = round_allocation(7, &chi).unwrap();
        assert_eq!(whole.iter().sum::<usize>(), 7);
    }

    #[test]
    fn rounding_respects_largest_remainder() {
        // chi = [2.7, 2.2, 2.1]; floors sum to 6, one leftover goes to the
        // 0.7 remainder.
        let whole = round_allocation(7, &[2.7, 2.2, 2.1]).unwrap();
        assert_eq!(whole, vec![3, 2, 2]);
    }

    #[test]
    fn rounding_exact_integers_untouched() {
        let whole = round_allocation(10, &[4.0, 6.0]).unwrap();
        assert_eq!(whole, vec![4, 6]);
    }

    #[test]
    fn rounding_large_deficit_distributes_cyclically() {
        // Floors give 0; all 5 pieces must still be assigned.
        let whole = round_allocation(5, &[0.9, 0.9, 0.9]).unwrap();
        assert_eq!(whole.iter().sum::<usize>(), 5);
    }

    #[test]
    fn rounding_rejects_bad_entries() {
        assert!(round_allocation(5, &[-0.1, 1.0]).is_err());
        assert!(round_allocation(5, &[f64::INFINITY]).is_err());
    }

    #[test]
    fn paper_scale_allocation() {
        // m = 100 equal sellers: everyone sells N/m = 5 pieces.
        let weights = vec![0.01; 100];
        let tau = vec![0.3; 100];
        let chi = allocate(500, &weights, &tau).unwrap();
        for c in &chi {
            assert!((c - 5.0).abs() < 1e-9);
        }
        let whole = round_allocation(500, &chi).unwrap();
        assert_eq!(whole.iter().sum::<usize>(), 500);
    }
}
