//! Stage 1: the buyer's price decision (paper §5.1.3).
//!
//! Substituting the broker's Eq. 25 and the sellers' Eq. 20 into the buyer
//! profit yields a concave objective in `p^M` alone:
//!
//! ```text
//! Φ(p^M) = θ₁·ln(1 + c₁·p^M) + θ₂·ln(1 + ρ₂·v) − (c₂·θ₁/2)·(p^M)²
//! c₁ = (ρ₁·v/4)·Σ 1/λ_i        c₂ = (v²/(2·θ₁))·Σ 1/λ_i
//! ```
//!
//! whose unique positive stationary point is the closed form of Eq. 27. The
//! numerical path maximizes the true backward-induction objective (with τ
//! clamping honored) and agrees in the interior regime.

use crate::error::{MarketError, Result};
use crate::params::MarketParams;
use crate::profit::{buyer_profit, total_dataset_quality};
use crate::stage2::p_d_star;
use crate::stage3;
use share_numerics::optimize::grid::{maximize_scan_traced, ScanStats};

/// The aggregates `c₁`, `c₂` of §5.1.3.
pub fn coefficients(params: &MarketParams) -> (f64, f64) {
    let s = params.sum_inv_lambda();
    let v = params.buyer.v;
    let c1 = params.buyer.rho1 * v / 4.0 * s;
    let c2 = v * v / (2.0 * params.buyer.theta1) * s;
    (c1, c2)
}

/// Closed-form Stage-1 strategy (paper Eq. 27):
///
/// ```text
/// p^M* = (−c₂ + √(c₂² + 4·c₁²·c₂)) / (2·c₁·c₂)
/// ```
///
/// # Errors
/// Propagates parameter validation errors.
pub fn p_m_star(params: &MarketParams) -> Result<f64> {
    params.validate()?;
    let (c1, c2) = coefficients(params);
    if c1 <= 0.0 || c2 <= 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "c1/c2",
            reason: format!("aggregates must be positive (c1={c1}, c2={c2})"),
        });
    }
    Ok((-c2 + (c2 * c2 + 4.0 * c1 * c1 * c2).sqrt()) / (2.0 * c1 * c2))
}

/// Buyer profit at `p^M` under the full backward-induction response:
/// `p^D = v·p^M/2` (Eq. 25), `τ` per Eq. 20 (clamped), `χ` per Eq. 13.
///
/// # Errors
/// Propagates Stage-3 errors.
pub fn buyer_profit_at(params: &MarketParams, p_m: f64) -> Result<f64> {
    let p_d = p_d_star(params.buyer.v, p_m);
    let tau = stage3::tau_direct(params, p_d)?;
    let chi = crate::allocation::allocate(params.buyer.n_pieces, &params.weights, &tau)
        .unwrap_or_else(|_| vec![0.0; params.m()]);
    let q_d = total_dataset_quality(&chi, &tau);
    Ok(buyer_profit(&params.buyer, p_m, q_d))
}

/// Numerically maximize the buyer profit over `p^M ∈ [0, p_m_max]`.
/// Returns `(p^M*, Φ*)`.
///
/// # Errors
/// Propagates Stage-3 and optimizer errors.
pub fn p_m_numeric(params: &MarketParams, p_m_max: f64) -> Result<(f64, f64)> {
    let obj = |p_m: f64| buyer_profit_at(params, p_m).unwrap_or(f64::NEG_INFINITY);
    let (x, v, stats) = maximize_scan_traced(obj, 0.0, p_m_max, 96, 1e-12)?;
    share_obs::obs_trace!(
        target: "share_market::stage1",
        "p_m_scan",
        "p_m" => x,
        "grid_evals" => stats.grid_evals,
        "golden_iterations" => stats.golden_iterations,
        "bracket_failed" => stats.bracket_failed
    );
    Ok((x, v))
}

/// Numerically maximize the buyer profit over a caller-chosen bracket
/// `p^M ∈ [p_m_lo, p_m_hi]` with a caller-chosen grid density. The
/// warm-started solver uses this to search a narrow window around a cached
/// neighbor's equilibrium price with far fewer objective evaluations than
/// the cold full-bracket scan. Returns `(p^M*, Φ*, scan stats)`.
///
/// # Errors
/// Propagates Stage-3 and optimizer errors (including an invalid bracket
/// `p_m_lo ≥ p_m_hi`).
pub fn p_m_numeric_bracketed(
    params: &MarketParams,
    p_m_lo: f64,
    p_m_hi: f64,
    n_grid: usize,
) -> Result<(f64, f64, ScanStats)> {
    let obj = |p_m: f64| buyer_profit_at(params, p_m).unwrap_or(f64::NEG_INFINITY);
    let (x, v, stats) = maximize_scan_traced(obj, p_m_lo, p_m_hi, n_grid, 1e-12)?;
    share_obs::obs_trace!(
        target: "share_market::stage1",
        "p_m_scan",
        "p_m" => x,
        "grid_evals" => stats.grid_evals,
        "golden_iterations" => stats.golden_iterations,
        "bracket_failed" => stats.bracket_failed,
        "bracketed" => true
    );
    Ok((x, v, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn closed_form_solves_stationarity() {
        // c₁c₂·x² + c₂·x − c₁ = 0 at x = p^M*.
        let params = market(50, 1);
        let (c1, c2) = coefficients(&params);
        let x = p_m_star(&params).unwrap();
        let resid = c1 * c2 * x * x + c2 * x - c1;
        assert!(resid.abs() < 1e-9 * c1.max(c2), "residual {resid}");
        assert!(x > 0.0);
    }

    #[test]
    fn closed_form_matches_numeric_maximizer() {
        let params = market(40, 2);
        let analytic = p_m_star(&params).unwrap();
        let (numeric, _) = p_m_numeric(&params, 5.0 * analytic).unwrap();
        assert!(
            (numeric - analytic).abs() < 2e-4 * analytic,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn paper_scale_magnitude() {
        // With §6.1 defaults the paper reports p^M* ≈ 0.036. λ draws differ,
        // so accept the right order of magnitude.
        let params = market(100, 3);
        let p = p_m_star(&params).unwrap();
        assert!(
            (0.005..0.2).contains(&p),
            "p^M* = {p} outside the paper's magnitude band"
        );
    }

    #[test]
    fn profit_concave_around_optimum() {
        let params = market(25, 4);
        let star = p_m_star(&params).unwrap();
        let at = |x: f64| buyer_profit_at(&params, x).unwrap();
        let peak = at(star);
        assert!(peak > at(star * 0.5));
        assert!(peak > at(star * 1.5));
        let h = star * 0.01;
        assert!(at(star + h) - 2.0 * peak + at(star - h) < 0.0);
    }

    #[test]
    fn buyer_profit_at_zero_price_is_pure_performance_utility() {
        let params = market(10, 5);
        // p^M = 0 ⇒ p^D = 0 ⇒ τ = 0 ⇒ q^D = 0: only the θ₂ term remains.
        let phi = buyer_profit_at(&params, 0.0).unwrap();
        let expect = params.buyer.theta2 * (1.0 + params.buyer.rho2 * params.buyer.v).ln();
        assert!((phi - expect).abs() < 1e-12);
    }

    #[test]
    fn more_sellers_lower_equilibrium_price() {
        // A deeper market (larger Σ1/λ) reduces the buyer's optimal price:
        // data is effectively cheaper to source.
        let small = market(10, 6);
        let big = market(1000, 6);
        let p_small = p_m_star(&small).unwrap();
        let p_big = p_m_star(&big).unwrap();
        assert!(p_big < p_small, "{p_big} !< {p_small}");
    }
}
