//! Welfare analysis: how much total surplus the Share equilibrium captures.
//!
//! Transfers (`p^M·q^M`, `p^D·q^D`) cancel out of the social ledger, so
//! total welfare is
//!
//! ```text
//! W(τ) = U(q^D(τ), v) − C(N, v) − Σ_i L_i(χ_i(τ), τ_i)
//! ```
//!
//! A planner free to dictate fidelities maximizes `W` directly; the
//! decentralized SNE generally leaves surplus on the table because each
//! stage marks prices up. The ratio `W_opt / W_sne` is the market's **price
//! of anarchy** — a diagnostic the paper's for-all profit-maximization
//! property invites but does not compute.

use crate::allocation::allocate;
use crate::error::Result;
use crate::params::MarketParams;
use crate::profit::{privacy_loss, product_utility, total_dataset_quality, translog_cost};
use crate::solver::SneSolution;
use serde::{Deserialize, Serialize};
use share_numerics::optimize::grid::maximize_scan;

/// Total welfare of a fidelity profile (transfers cancel).
pub fn welfare(params: &MarketParams, tau: &[f64]) -> f64 {
    let m = params.m();
    let chi = if tau.iter().any(|&t| t > 0.0) {
        allocate(params.buyer.n_pieces, &params.weights, tau).unwrap_or_else(|_| vec![0.0; m])
    } else {
        vec![0.0; m]
    };
    let q_d = total_dataset_quality(&chi, tau);
    let utility = product_utility(&params.buyer, q_d);
    let cost = translog_cost(&params.broker, params.buyer.n_pieces as f64, params.buyer.v);
    let losses: f64 = (0..m)
        .map(|i| privacy_loss(params.loss_model, params.sellers[i].lambda, chi[i], tau[i]))
        .sum();
    utility - cost - losses
}

/// Outcome of the planner's problem and the comparison with a market
/// solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WelfareReport {
    /// Welfare at the market equilibrium.
    pub market_welfare: f64,
    /// Welfare at the planner's optimum.
    pub optimal_welfare: f64,
    /// `optimal / market` (≥ 1 up to solver slack).
    pub price_of_anarchy: f64,
    /// The planner's fidelity profile.
    pub optimal_tau: Vec<f64>,
}

/// Solve the planner's problem analytically (quadratic loss).
///
/// The welfare objective depends on fidelities only through the quality
/// contributions `z_i = χ_i·τ_i`: given a total quality `q = Σz`, the
/// loss-minimizing split is `z_i = q·(1/λ_i)/S` with `S = Σ 1/λ_j`
/// (Lagrange on `Σ λ_i z_i²`), leaving the strictly concave scalar problem
///
/// ```text
/// max_{q ∈ [0, q_max]}  U(q, v) − q²/S − C(N, v)
/// ```
///
/// solved by golden-section scanning. The fidelity profile realizing a
/// given `z` under the Eq. 13 allocation is `τ_i = √(z_i·D/(N·ω_i))` with
/// `D = (Σ√(z_j·ω_j))²/N`; τ scales linearly with `q`, so the `τ ≤ 1`
/// feasibility cap translates into the `q_max` bound.
///
/// # Errors
/// - [`crate::MarketError::InvalidParameter`] for the `LinearChi` loss
///   (no closed-form split; not needed by the evaluation).
/// - Propagates validation and optimizer errors.
pub fn social_optimum(params: &MarketParams) -> Result<Vec<f64>> {
    params.validate()?;
    if params.loss_model != crate::params::LossModel::Quadratic {
        return Err(crate::MarketError::InvalidParameter {
            name: "loss_model",
            reason: "social_optimum supports the quadratic loss (Eq. 11) only".to_string(),
        });
    }
    let m = params.m();
    let n = params.buyer.n_pieces as f64;
    let s: f64 = params.sum_inv_lambda();

    // τ profile realizing the optimal split at total quality q.
    let tau_for = |q: f64| -> Vec<f64> {
        if q <= 0.0 {
            return vec![0.0; m];
        }
        let z: Vec<f64> = params
            .sellers
            .iter()
            .map(|sl| q * (1.0 / sl.lambda) / s)
            .collect();
        let sqrt_sum: f64 = z
            .iter()
            .zip(&params.weights)
            .map(|(zi, w)| (zi * w).sqrt())
            .sum();
        let d = sqrt_sum * sqrt_sum / n;
        z.iter()
            .zip(&params.weights)
            .map(|(zi, w)| (zi * d / (n * w)).sqrt())
            .collect()
    };

    // τ grows linearly in q: find the feasibility cap where max τ = 1.
    let tau_at_one = tau_for(1.0);
    let max_rate = tau_at_one.iter().cloned().fold(0.0_f64, f64::max);
    let q_cap = if max_rate > 0.0 { 1.0 / max_rate } else { n };

    let objective = |q: f64| {
        let utility = product_utility(&params.buyer, q);
        utility - q * q / s
    };
    let (q_star, _) = maximize_scan(objective, 0.0, q_cap, 96, 1e-12)?;
    Ok(tau_for(q_star))
}

/// Compare a market solution's welfare with the planner's optimum.
///
/// # Errors
/// Propagates [`social_optimum`] errors.
pub fn welfare_report(params: &MarketParams, sol: &SneSolution) -> Result<WelfareReport> {
    let market_welfare = welfare(params, &sol.tau);
    let optimal_tau = social_optimum(params)?;
    let optimal_welfare = welfare(params, &optimal_tau);
    Ok(WelfareReport {
        market_welfare,
        optimal_welfare,
        price_of_anarchy: optimal_welfare / market_welfare,
        optimal_tau,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn transfers_cancel_welfare_is_profit_sum() {
        // W(τ*) must equal Φ* + Ω* + ΣΨ* exactly — the accounting identity.
        let params = market(20, 1);
        let sol = solve(&params).unwrap();
        let w = welfare(&params, &sol.tau);
        let profit_sum =
            sol.buyer_profit + sol.broker_profit + sol.seller_profits.iter().sum::<f64>();
        assert!(
            (w - profit_sum).abs() < 1e-9 * (1.0 + w.abs()),
            "welfare {w} vs profit sum {profit_sum}"
        );
    }

    #[test]
    fn planner_weakly_beats_market() {
        let params = market(10, 2);
        let sol = solve(&params).unwrap();
        let rep = welfare_report(&params, &sol).unwrap();
        assert!(rep.optimal_welfare >= rep.market_welfare - 1e-9, "{rep:?}");
        assert!(rep.price_of_anarchy >= 1.0 - 1e-9);
    }

    #[test]
    fn optimum_is_stationary_per_coordinate() {
        let params = market(6, 3);
        let tau = social_optimum(&params).unwrap();
        let base = welfare(&params, &tau);
        for i in 0..6 {
            for delta in [-0.01, 0.01] {
                let mut t = tau.clone();
                t[i] = (t[i] + delta).clamp(0.0, 1.0);
                assert!(
                    welfare(&params, &t) <= base + 1e-6 * (1.0 + base.abs()),
                    "coordinate {i} not optimal"
                );
            }
        }
    }

    #[test]
    fn zero_fidelity_welfare_is_baseline() {
        // No data: W = θ₂-utility − cost, no privacy losses.
        let params = market(5, 4);
        let w = welfare(&params, &[0.0; 5]);
        let expect = product_utility(&params.buyer, 0.0)
            - translog_cost(&params.broker, params.buyer.n_pieces as f64, params.buyer.v);
        assert!((w - expect).abs() < 1e-12);
    }

    #[test]
    fn report_serializes() {
        let params = market(4, 5);
        let sol = solve(&params).unwrap();
        let rep = welfare_report(&params, &sol).unwrap();
        let js = serde_json::to_string(&rep).unwrap();
        assert!(js.contains("price_of_anarchy"));
        assert_eq!(rep.optimal_tau.len(), 4);
    }
}
