//! Broker-leading market variant — the paper's §7 notes that Share "can be
//! easily adapted to a variety of market settings, e.g., broker-leading
//! instead of buyer-leading"; this module realizes that adaptation.
//!
//! In the broker-leading game the broker moves first and posts both prices
//! to maximize her own profit, subject to the buyer's **participation
//! constraint** (the buyer only trades when `Φ ≥ 0`) and the sellers' inner
//! Nash response (Stage 3 unchanged):
//!
//! ```text
//! max_{p^D}  Ω = p^M(p^D)·q^M(p^D) − C(N, v) − p^D·q^D(p^D)
//! s.t.       p^M(p^D) = U(q^D(p^D), v) / q^M(p^D)      (full surplus extraction)
//!            τ(p^D) from Eq. 20,  q^D = Σχ_iτ_i,  q^M = q^D·v
//! ```
//!
//! The buyer is left with Φ = 0 — the textbook consequence of losing the
//! first-mover advantage — which quantifies how much the buyer-leading
//! design of Share is worth to buyers.

use crate::allocation::allocate;
use crate::error::Result;
use crate::params::MarketParams;
use crate::profit::{product_utility, total_dataset_quality, translog_cost};
use crate::solver::{solve as solve_buyer_leading, SneSolution};
use crate::stage3::tau_direct;
use serde::{Deserialize, Serialize};
use share_numerics::optimize::grid::maximize_scan;

/// Outcome of the broker-leading game.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerLeadingSolution {
    /// Broker's posted data price.
    pub p_d: f64,
    /// Broker's posted product price (surplus-extracting).
    pub p_m: f64,
    /// Sellers' fidelity response.
    pub tau: Vec<f64>,
    /// Total dataset quality.
    pub q_d: f64,
    /// Buyer profit (≈ 0 by construction).
    pub buyer_profit: f64,
    /// Broker profit.
    pub broker_profit: f64,
}

/// Broker profit at `p^D` under surplus extraction.
fn broker_objective(params: &MarketParams, p_d: f64) -> f64 {
    let Ok(tau) = tau_direct(params, p_d) else {
        return f64::NEG_INFINITY;
    };
    if tau.iter().all(|&t| t <= 0.0) {
        // No data flows: the broker still pays the manufacturing cost if she
        // produces; treat as no-trade with zero profit.
        return 0.0;
    }
    let Ok(chi) = allocate(params.buyer.n_pieces, &params.weights, &tau) else {
        return 0.0;
    };
    let q_d = total_dataset_quality(&chi, &tau);
    let utility = product_utility(&params.buyer, q_d);
    // p^M·q^M = U under extraction, so revenue is the full utility.
    utility
        - translog_cost(&params.broker, params.buyer.n_pieces as f64, params.buyer.v)
        - p_d * q_d
}

/// Solve the broker-leading game over `p^D ∈ [0, p_d_max]`.
///
/// # Errors
/// Propagates parameter validation, Stage-3 and optimizer errors.
pub fn solve_broker_leading(params: &MarketParams, p_d_max: f64) -> Result<BrokerLeadingSolution> {
    params.validate()?;
    let (p_d, _) = maximize_scan(|x| broker_objective(params, x), 0.0, p_d_max, 96, 1e-12)?;
    let tau = tau_direct(params, p_d)?;
    let chi = if tau.iter().any(|&t| t > 0.0) {
        allocate(params.buyer.n_pieces, &params.weights, &tau)?
    } else {
        vec![0.0; params.m()]
    };
    let q_d = total_dataset_quality(&chi, &tau);
    let q_m = q_d * params.buyer.v;
    let utility = product_utility(&params.buyer, q_d);
    let p_m = if q_m > 0.0 { utility / q_m } else { 0.0 };
    let broker_profit = utility
        - translog_cost(&params.broker, params.buyer.n_pieces as f64, params.buyer.v)
        - p_d * q_d;
    Ok(BrokerLeadingSolution {
        p_d,
        p_m,
        tau,
        q_d,
        buyer_profit: 0.0,
        broker_profit,
    })
}

/// Side-by-side comparison of the two market orderings on the same
/// parameters: who leads matters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeadershipComparison {
    /// Buyer-leading (Share) equilibrium.
    pub buyer_leading: SneSolution,
    /// Broker-leading equilibrium.
    pub broker_leading: BrokerLeadingSolution,
}

/// Solve both orderings.
///
/// # Errors
/// Propagates either solver's errors.
pub fn compare_leadership(params: &MarketParams) -> Result<LeadershipComparison> {
    let buyer_leading = solve_buyer_leading(params)?;
    // Bracket the broker's price search around the buyer-leading scale.
    let broker_leading = solve_broker_leading(params, (buyer_leading.p_d * 20.0).max(0.1))?;
    Ok(LeadershipComparison {
        buyer_leading,
        broker_leading,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn broker_leading_solves_and_is_feasible() {
        let params = market(50, 1);
        let s = solve_broker_leading(&params, 0.5).unwrap();
        assert!(s.p_d > 0.0);
        assert!(s.p_m > 0.0);
        assert!(s.tau.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!(s.q_d > 0.0);
    }

    #[test]
    fn broker_earns_more_when_leading() {
        // Losing the first move costs the buyer her whole surplus; the
        // broker's profit strictly exceeds her buyer-leading profit.
        let params = market(50, 2);
        let cmp = compare_leadership(&params).unwrap();
        assert!(
            cmp.broker_leading.broker_profit > cmp.buyer_leading.broker_profit,
            "broker-leading {} should beat buyer-leading {}",
            cmp.broker_leading.broker_profit,
            cmp.buyer_leading.broker_profit
        );
    }

    #[test]
    fn buyer_keeps_surplus_only_when_leading() {
        let params = market(50, 3);
        let cmp = compare_leadership(&params).unwrap();
        assert!(cmp.buyer_leading.buyer_profit > 0.0);
        assert!(cmp.broker_leading.buyer_profit.abs() < 1e-12);
    }

    #[test]
    fn surplus_extraction_identity() {
        // p^M·q^M = U at the broker-leading solution.
        let params = market(30, 4);
        let s = solve_broker_leading(&params, 0.5).unwrap();
        let q_m = s.q_d * params.buyer.v;
        let utility = product_utility(&params.buyer, s.q_d);
        assert!((s.p_m * q_m - utility).abs() < 1e-9, "extraction violated");
    }

    #[test]
    fn sellers_still_play_their_nash_response() {
        use crate::stage3::SellerNashGame;
        use share_game::best_response::BrOptions;
        use share_game::verify::is_epsilon_nash;
        let params = market(20, 5);
        let s = solve_broker_leading(&params, 0.5).unwrap();
        let game = SellerNashGame::new(&params, s.p_d);
        assert!(is_epsilon_nash(&game, &s.tau, 1e-7, BrOptions::default()).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut params = market(5, 6);
        params.weights.clear();
        assert!(solve_broker_leading(&params, 0.5).is_err());
    }
}
