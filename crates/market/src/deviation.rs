//! The effectiveness experiment of the paper's §6.2 (Fig. 2): sweep one
//! party's strategy around its SNE value and record every party's profit.
//!
//! Deviation semantics follow the paper's §5.1.4 existence argument: when an
//! upper-stage strategy moves, the lower stages *re-react* along their
//! optimal expressions (Eq. 25 for the broker, Eq. 20 for sellers); when a
//! seller deviates, everything else stays fixed.

use crate::allocation::allocate;
use crate::error::Result;
use crate::params::MarketParams;
use crate::profit::{broker_profit, buyer_profit, seller_profit, total_dataset_quality};
use crate::solver::SneSolution;
use crate::stage2::p_d_star;
use crate::stage3::tau_direct;
use serde::{Deserialize, Serialize};
use share_numerics::optimize::grid::linspace;

/// One point of a deviation sweep: the deviating strategy value and the
/// resulting profits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The deviated strategy value (`p^M`, `p^D`, or `τ₁` depending on the
    /// experiment).
    pub x: f64,
    /// Buyer profit Φ.
    pub buyer: f64,
    /// Broker profit Ω.
    pub broker: f64,
    /// Profit of the tracked sellers (paper plots S₁ in Figs. 2a/2b and
    /// S₁, S₂ in Fig. 2c).
    pub sellers: Vec<f64>,
}

fn profits_at(
    params: &MarketParams,
    p_m: f64,
    p_d: f64,
    tau: &[f64],
    tracked: &[usize],
) -> SweepPoint {
    let chi = allocate(params.buyer.n_pieces, &params.weights, tau)
        .unwrap_or_else(|_| vec![0.0; params.m()]);
    let q_d = total_dataset_quality(&chi, tau);
    SweepPoint {
        x: f64::NAN, // caller fills in
        buyer: buyer_profit(&params.buyer, p_m, q_d),
        broker: broker_profit(&params.broker, &params.buyer, p_m, p_d, q_d),
        sellers: tracked
            .iter()
            .map(|&i| {
                seller_profit(
                    params.loss_model,
                    params.sellers[i].lambda,
                    p_d,
                    chi[i],
                    tau[i],
                )
            })
            .collect(),
    }
}

/// Fig. 2(a): sweep `p^M` over `[lo, hi]`; the broker re-prices via Eq. 25
/// and sellers re-react via Eq. 20. `tracked` selects which sellers' profits
/// are reported (the paper tracks S₁).
///
/// # Errors
/// Propagates grid and Stage-3 errors.
pub fn sweep_p_m(
    params: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
    tracked: &[usize],
) -> Result<Vec<SweepPoint>> {
    let grid = linspace(lo, hi, points.max(2))?;
    let mut out = Vec::with_capacity(grid.len());
    for p_m in grid {
        let p_d = p_d_star(params.buyer.v, p_m);
        let tau = tau_direct(params, p_d)?;
        let mut pt = profits_at(params, p_m, p_d, &tau, tracked);
        pt.x = p_m;
        out.push(pt);
    }
    Ok(out)
}

/// Fig. 2(b): sweep `p^D` with the buyer fixed at `p^M*`; sellers re-react
/// via Eq. 20.
///
/// # Errors
/// Propagates grid and Stage-3 errors.
pub fn sweep_p_d(
    params: &MarketParams,
    sol: &SneSolution,
    lo: f64,
    hi: f64,
    points: usize,
    tracked: &[usize],
) -> Result<Vec<SweepPoint>> {
    let grid = linspace(lo, hi, points.max(2))?;
    let mut out = Vec::with_capacity(grid.len());
    for p_d in grid {
        let tau = tau_direct(params, p_d)?;
        let mut pt = profits_at(params, sol.p_m, p_d, &tau, tracked);
        pt.x = p_d;
        out.push(pt);
    }
    Ok(out)
}

/// Fig. 2(c): sweep seller `deviator`'s fidelity `τ` with everything else
/// fixed at the SNE (true unilateral Nash deviation).
///
/// # Errors
/// Propagates grid errors.
pub fn sweep_tau(
    params: &MarketParams,
    sol: &SneSolution,
    deviator: usize,
    lo: f64,
    hi: f64,
    points: usize,
    tracked: &[usize],
) -> Result<Vec<SweepPoint>> {
    let grid = linspace(lo, hi, points.max(2))?;
    let mut out = Vec::with_capacity(grid.len());
    for t in grid {
        let mut tau = sol.tau.clone();
        tau[deviator] = t;
        let mut pt = profits_at(params, sol.p_m, sol.p_d, &tau, tracked);
        pt.x = t;
        out.push(pt);
    }
    Ok(out)
}

/// Index of the sweep point with the highest profit for the given party
/// closure — used to locate the empirical peak of a sweep.
pub fn argmax_by<F: Fn(&SweepPoint) -> f64>(series: &[SweepPoint], f: F) -> Option<usize> {
    series
        .iter()
        .enumerate()
        .max_by(|a, b| {
            f(a.1)
                .partial_cmp(&f(b.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, seed: u64) -> (MarketParams, SneSolution) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = MarketParams::paper_defaults(m, &mut rng);
        let sol = solve(&params).unwrap();
        (params, sol)
    }

    #[test]
    fn fig2a_buyer_profit_peaks_at_equilibrium() {
        let (params, sol) = setup(100, 1);
        let series = sweep_p_m(&params, sol.p_m * 0.25, sol.p_m * 2.0, 201, &[0]).unwrap();
        let peak = argmax_by(&series, |p| p.buyer).unwrap();
        let x_peak = series[peak].x;
        assert!(
            (x_peak - sol.p_m).abs() < 0.02 * sol.p_m,
            "peak {x_peak} vs p^M* {}",
            sol.p_m
        );
    }

    #[test]
    fn fig2a_broker_and_seller_increase_with_p_m() {
        // Paper: "with growing p^M the broker can gain more profit, which
        // further adds sellers' compensations".
        let (params, sol) = setup(100, 2);
        let series = sweep_p_m(&params, sol.p_m * 0.5, sol.p_m * 1.5, 51, &[0]).unwrap();
        assert!(series.last().unwrap().broker > series[0].broker);
        assert!(series.last().unwrap().sellers[0] > series[0].sellers[0]);
    }

    #[test]
    fn fig2b_broker_profit_peaks_at_equilibrium() {
        let (params, sol) = setup(100, 3);
        let series = sweep_p_d(&params, &sol, sol.p_d * 0.25, sol.p_d * 2.0, 201, &[0]).unwrap();
        let peak = argmax_by(&series, |p| p.broker).unwrap();
        assert!(
            (series[peak].x - sol.p_d).abs() < 0.02 * sol.p_d,
            "peak {} vs p^D* {}",
            series[peak].x,
            sol.p_d
        );
    }

    #[test]
    fn fig2b_buyer_and_seller_increase_with_p_d() {
        // Paper: growing p^D adds seller compensation and improves dataset
        // quality, raising the buyer's profit.
        let (params, sol) = setup(100, 4);
        let series = sweep_p_d(&params, &sol, sol.p_d * 0.5, sol.p_d * 1.5, 51, &[0]).unwrap();
        assert!(series.last().unwrap().sellers[0] > series[0].sellers[0]);
        assert!(series.last().unwrap().buyer > series[0].buyer);
    }

    #[test]
    fn fig2c_deviating_seller_peaks_at_equilibrium() {
        let (params, sol) = setup(100, 5);
        let t_star = sol.tau[0];
        let series = sweep_tau(
            &params,
            &sol,
            0,
            (t_star * 0.25).max(1e-6),
            t_star * 2.0,
            201,
            &[0, 1],
        )
        .unwrap();
        let peak = argmax_by(&series, |p| p.sellers[0]).unwrap();
        assert!(
            (series[peak].x - t_star).abs() < 0.03 * t_star,
            "peak {} vs tau* {}",
            series[peak].x,
            t_star
        );
    }

    #[test]
    fn fig2c_other_seller_nearly_unaffected() {
        // Paper: the effect of one seller's deviation is diluted among many
        // sellers — S₂'s profit stays almost unchanged, and the broker's too.
        let (params, sol) = setup(100, 6);
        let t_star = sol.tau[0];
        let series = sweep_tau(
            &params,
            &sol,
            0,
            (t_star * 0.5).max(1e-6),
            t_star * 1.5,
            21,
            &[0, 1],
        )
        .unwrap();
        let s2: Vec<f64> = series.iter().map(|p| p.sellers[1]).collect();
        let spread = s2.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - s2.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let scale = s2[10].abs().max(1e-12);
        assert!(spread / scale < 0.05, "S2 varies {spread} on scale {scale}");
        let br: Vec<f64> = series.iter().map(|p| p.broker).collect();
        let br_spread = br.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - br.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(br_spread / br[10].abs() < 0.05, "broker varies {br_spread}");
    }

    #[test]
    fn sweeps_record_grid_endpoints() {
        let (params, sol) = setup(10, 7);
        let series = sweep_p_m(&params, 0.01, 0.02, 11, &[]).unwrap();
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].x, 0.01);
        assert_eq!(series[10].x, 0.02);
        assert!(series[0].sellers.is_empty());
        let s2 = sweep_tau(&params, &sol, 0, 0.0001, 0.001, 5, &[0]).unwrap();
        assert_eq!(s2.len(), 5);
    }
}
