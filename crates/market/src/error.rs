//! Error type for the Share market.

use share_game::GameError;
use share_ldp::LdpError;
use share_ml::MlError;
use share_numerics::NumericsError;
use share_valuation::ValuationError;
use std::fmt;

/// Errors produced by market construction, equilibrium solving and trading.
#[derive(Debug)]
pub enum MarketError {
    /// A market parameter violates its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated requirement.
        reason: String,
    },
    /// The market has no sellers.
    NoSellers,
    /// Mismatched per-seller array lengths (weights, lambdas, datasets).
    SellerCountMismatch {
        /// Expected seller count.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// A seller cannot supply the allocated quantity.
    InsufficientData {
        /// Seller index.
        seller: usize,
        /// Pieces requested.
        requested: usize,
        /// Pieces available.
        available: usize,
    },
    /// Numerical kernel failure.
    Numerics(NumericsError),
    /// Game-solver failure.
    Game(GameError),
    /// LDP failure.
    Ldp(LdpError),
    /// ML-substrate failure.
    Ml(MlError),
    /// Valuation failure.
    Valuation(ValuationError),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid market parameter `{name}`: {reason}")
            }
            Self::NoSellers => write!(f, "market requires at least one seller"),
            Self::SellerCountMismatch { expected, got } => {
                write!(f, "seller count mismatch: expected {expected}, got {got}")
            }
            Self::InsufficientData {
                seller,
                requested,
                available,
            } => write!(
                f,
                "seller {seller} cannot supply {requested} pieces (has {available})"
            ),
            Self::Numerics(e) => write!(f, "numerics: {e}"),
            Self::Game(e) => write!(f, "game solver: {e}"),
            Self::Ldp(e) => write!(f, "ldp: {e}"),
            Self::Ml(e) => write!(f, "ml: {e}"),
            Self::Valuation(e) => write!(f, "valuation: {e}"),
        }
    }
}

impl std::error::Error for MarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numerics(e) => Some(e),
            Self::Game(e) => Some(e),
            Self::Ldp(e) => Some(e),
            Self::Ml(e) => Some(e),
            Self::Valuation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for MarketError {
    fn from(e: NumericsError) -> Self {
        Self::Numerics(e)
    }
}
impl From<GameError> for MarketError {
    fn from(e: GameError) -> Self {
        Self::Game(e)
    }
}
impl From<LdpError> for MarketError {
    fn from(e: LdpError) -> Self {
        Self::Ldp(e)
    }
}
impl From<MlError> for MarketError {
    fn from(e: MlError) -> Self {
        Self::Ml(e)
    }
}
impl From<ValuationError> for MarketError {
    fn from(e: ValuationError) -> Self {
        Self::Valuation(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MarketError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(MarketError::NoSellers.to_string().contains("at least one"));
        assert!(MarketError::InsufficientData {
            seller: 3,
            requested: 100,
            available: 90
        }
        .to_string()
        .contains("seller 3"));
        let e = MarketError::from(NumericsError::Singular { pivot: 0 });
        assert!(e.source().is_some());
        assert!(MarketError::NoSellers.source().is_none());
    }
}
