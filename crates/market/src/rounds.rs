//! Multi-round market simulation.
//!
//! The paper initializes seller weights with "dummy buyers": the mechanism
//! iterates a few times (five in §6.1) so Shapley-driven weights stabilize
//! before the measured buyer arrives. [`warmup`] implements exactly that;
//! [`run_rounds`] drives an arbitrary buyer sequence and reports weight
//! convergence.

#[cfg(test)]
use crate::dynamics::WeightUpdate;
use crate::dynamics::{RoundOptions, RoundReport, TradingMarket};
use crate::error::Result;
use crate::params::BuyerParams;

/// Largest absolute weight change between consecutive rounds.
pub fn weight_shift(before: &[f64], after: &[f64]) -> f64 {
    before
        .iter()
        .zip(after)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max)
}

/// Run `rounds` warm-up rounds with the current (dummy) buyer to stabilize
/// the Shapley-driven weights (paper §6.1 uses five). Returns the per-round
/// weight shifts.
///
/// # Errors
/// Propagates round errors.
pub fn warmup(market: &mut TradingMarket, rounds: usize, opts: RoundOptions) -> Result<Vec<f64>> {
    let mut shifts = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let before = market.params().weights.clone();
        market.run_round(opts)?;
        shifts.push(weight_shift(&before, &market.params().weights));
    }
    Ok(shifts)
}

/// Run one round per buyer in `buyers` (buyers "come one at a time", §4.1),
/// returning each round's report.
///
/// # Errors
/// Propagates round errors. Note the buyer change mutates `N` and the
/// utility parameters between rounds, exactly as a new demand arriving at
/// the market.
pub fn run_rounds(
    market: &mut TradingMarket,
    buyers: &[BuyerParams],
    opts: RoundOptions,
) -> Result<Vec<RoundReport>> {
    let mut reports = Vec::with_capacity(buyers.len());
    for buyer in buyers {
        market.set_buyer(*buyer)?;
        reports.push(market.run_round(opts)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MarketParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use share_datagen::ccpp::{feature_domains, generate, target_domain, CcppConfig};
    use share_datagen::partition::partition_equal;
    use share_valuation::monte_carlo::McOptions;

    fn build_market(m: usize, n_pieces: usize) -> TradingMarket {
        let data = generate(CcppConfig {
            rows: m * 150,
            seed: 17,
            ..CcppConfig::default()
        })
        .unwrap();
        let test = generate(CcppConfig {
            rows: 300,
            seed: 18,
            ..CcppConfig::default()
        })
        .unwrap();
        let sellers = partition_equal(&data, m).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = MarketParams::paper_defaults(m, &mut rng);
        params.buyer.n_pieces = n_pieces;
        TradingMarket::new(
            params,
            sellers,
            test,
            feature_domains().to_vec(),
            target_domain(),
        )
        .unwrap()
    }

    fn opts() -> RoundOptions {
        RoundOptions {
            weight_update: WeightUpdate::MonteCarlo(McOptions {
                permutations: 4,
                seed: 2,
                ..McOptions::default()
            }),
            ..RoundOptions::default()
        }
    }

    #[test]
    fn warmup_runs_requested_rounds() {
        let mut market = build_market(6, 120);
        let shifts = warmup(&mut market, 5, opts()).unwrap();
        assert_eq!(shifts.len(), 5);
        assert_eq!(market.ledger().len(), 5);
        assert!(shifts.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn weights_tend_to_stabilize() {
        // After several Shapley rounds the weights should move less than in
        // the first round (paper: five iterations suffice to stabilize).
        let mut market = build_market(6, 120);
        let shifts = warmup(&mut market, 6, opts()).unwrap();
        let early = shifts[0];
        let late = shifts[5];
        assert!(
            late <= early + 1e-9,
            "weights diverging: first {early}, last {late}"
        );
    }

    #[test]
    fn buyer_sequence_changes_equilibria() {
        let mut market = build_market(5, 100);
        let base = BuyerParams {
            n_pieces: 100,
            ..BuyerParams::paper_defaults()
        };
        let buyers = vec![
            base,
            BuyerParams {
                theta1: 0.8,
                theta2: 0.2,
                ..base
            },
        ];
        let mut o = opts();
        o.weight_update = WeightUpdate::None;
        let reports = run_rounds(&mut market, &buyers, o).unwrap();
        assert_eq!(reports.len(), 2);
        // Higher θ₁ buyer pays more (Fig. 4a).
        assert!(reports[1].solution.p_m > reports[0].solution.p_m);
    }

    #[test]
    fn run_rounds_rejects_invalid_buyer() {
        let mut market = build_market(4, 80);
        let bad = BuyerParams {
            v: -1.0,
            n_pieces: 80,
            ..BuyerParams::paper_defaults()
        };
        assert!(run_rounds(&mut market, &[bad], opts()).is_err());
    }

    #[test]
    fn weight_shift_metric() {
        assert_eq!(weight_shift(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((weight_shift(&[0.5, 0.5], &[0.3, 0.7]) - 0.2).abs() < 1e-15);
    }
}
