//! Algorithm 1 — the complete data-trading dynamics.
//!
//! A [`TradingMarket`] owns the sellers' raw datasets, a held-out test set,
//! and the broker's weights. [`TradingMarket::run_round`] executes the five
//! phases of the paper's Algorithm 1:
//!
//! 1. **Parameter collection** — already embodied in [`MarketParams`];
//! 2. **Strategy decision** — solve the SNE `⟨p^M*, p^D*, τ*⟩` (§5.1);
//! 3. **Data transaction** — integer allocation `χ*` (Eq. 13), each seller
//!    samples `χ_i*` pieces, converts `τ_i*` to `ε_i*` (Eq. 10 inverse),
//!    perturbs the pieces with the Laplace mechanism and ships them;
//! 4. **Product production** — the broker trains a linear-regression model
//!    on the union and measures its explained variance; seller weights are
//!    refreshed with the Shapley rule `ω' = 0.2ω + 0.8·SV` (line 17);
//! 5. **Product transaction** — payments settle and the ledger records the
//!    round.

use crate::allocation::round_allocation;
use crate::error::{MarketError, Result};
use crate::ledger::{Ledger, Payments, TransactionRecord};
use crate::params::MarketParams;
use crate::profit::translog_cost;
use crate::solver::{solve, SneSolution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use share_ldp::fidelity::epsilon_for_fidelity;
use share_ldp::laplace::LaplaceMechanism;
use share_ldp::mechanism::{Domain, Mechanism};
use share_ml::dataset::Dataset;
use share_ml::linreg::LinearRegression;
use share_valuation::monte_carlo::{shapley_monte_carlo, McOptions};
use share_valuation::utility::CoalitionUtility;
use share_valuation::weights::{normalize, update_weights};
use std::time::{Duration, Instant};

/// How the broker refreshes seller weights after production (Alg. 1
/// line 17).
#[derive(Debug, Clone, Copy)]
pub enum WeightUpdate {
    /// Skip the update entirely (the paper's Fig. 3(b) configuration).
    None,
    /// Generic Monte-Carlo Shapley re-training a model per coalition
    /// (exact paper procedure; expensive at large m).
    MonteCarlo(McOptions),
    /// Incremental sufficient-statistics Shapley for linear-regression
    /// products (same estimator, O(m·d³) per permutation — the Fig. 3(a)
    /// scale path).
    FastLinReg(crate::fast_shapley::FastShapleyOptions),
}

/// Options controlling one trading round.
#[derive(Debug, Clone, Copy)]
pub struct RoundOptions {
    /// Weight-update policy.
    pub weight_update: WeightUpdate,
    /// Retention factor of the weight update (the paper uses 0.2).
    pub weight_retain: f64,
    /// Whether sellers apply LDP before shipping (disable to measure the
    /// privacy overhead itself).
    pub apply_ldp: bool,
    /// RNG seed for the round (sampling + noise).
    pub seed: u64,
}

impl Default for RoundOptions {
    fn default() -> Self {
        Self {
            weight_update: WeightUpdate::MonteCarlo(McOptions {
                permutations: 100,
                ..McOptions::default()
            }),
            weight_retain: 0.2,
            apply_ldp: true,
            seed: 0xDA7A,
        }
    }
}

/// Wall-clock timings of the round phases (the paper's Fig. 3 measures the
/// full algorithm with and without the Shapley phase).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Strategy decision (SNE solving).
    pub strategy: Duration,
    /// Data transaction (sampling + LDP).
    pub transaction: Duration,
    /// Product production (training + evaluation).
    pub production: Duration,
    /// Shapley weight update (zero when skipped).
    pub shapley: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time of the round.
    pub fn total(&self) -> Duration {
        self.strategy + self.transaction + self.production + self.shapley
    }
}

/// Report of one completed round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// The equilibrium the round traded at.
    pub solution: SneSolution,
    /// Whole-piece allocation (Σ = N).
    pub chi: Vec<usize>,
    /// Per-seller privacy budgets.
    pub epsilons: Vec<f64>,
    /// Explained variance of the manufactured model on the test set.
    pub measured_performance: f64,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// Train a standardized ridge regression on `train` and score its explained
/// variance on `test`. Standardization keeps the fit well-conditioned even
/// when low-fidelity LDP noise inflates feature magnitudes by orders; any
/// residual failure (fully degenerate data) scores 0 — a worthless product,
/// not a market failure.
fn train_and_score(train: &Dataset, test: &Dataset) -> f64 {
    let Ok(scaler) = share_ml::scale::Standardizer::fit(train.features()) else {
        return 0.0;
    };
    let Ok(train_x) = scaler.transform(train.features()) else {
        return 0.0;
    };
    let Ok(std_train) = Dataset::new(train_x, train.targets().to_vec()) else {
        return 0.0;
    };
    let mut model = LinearRegression::new(share_ml::linreg::LinRegConfig {
        ridge: 1e-6,
        ..Default::default()
    });
    if model.fit(&std_train).is_err() {
        return 0.0;
    }
    let Ok(test_x) = scaler.transform(test.features()) else {
        return 0.0;
    };
    let Ok(pred) = model.predict(&test_x) else {
        return 0.0;
    };
    share_ml::metrics::explained_variance(test.targets(), &pred).unwrap_or(0.0)
}

/// Utility for the Shapley weight update: explained variance of a model
/// trained on the union of the sellers' *shipped* datasets.
struct ShippedUtility<'a> {
    shipped: &'a [Option<Dataset>],
    test: &'a Dataset,
}

impl CoalitionUtility for ShippedUtility<'_> {
    fn n_players(&self) -> usize {
        self.shipped.len()
    }

    fn utility(&self, coalition: &[usize]) -> f64 {
        let parts: Vec<&Dataset> = coalition
            .iter()
            .filter_map(|&i| self.shipped[i].as_ref())
            .collect();
        if parts.is_empty() {
            return 0.0;
        }
        let Ok(merged) = Dataset::concat(&parts) else {
            return 0.0;
        };
        train_and_score(&merged, self.test)
    }
}

/// A live market: parameters, sellers' raw data, a test set and the ledger.
pub struct TradingMarket {
    params: MarketParams,
    seller_data: Vec<Dataset>,
    test_data: Dataset,
    feature_domains: Vec<Domain>,
    target_domain: Domain,
    ledger: Ledger,
    rounds_run: usize,
}

impl TradingMarket {
    /// Assemble a market. `seller_data[i]` is seller `i`'s raw dataset;
    /// `feature_domains`/`target_domain` bound the LDP sensitivity.
    ///
    /// # Errors
    /// - Parameter validation errors.
    /// - [`MarketError::SellerCountMismatch`] when datasets and sellers
    ///   disagree.
    /// - [`MarketError::InvalidParameter`] when domains don't match the
    ///   feature width.
    pub fn new(
        params: MarketParams,
        seller_data: Vec<Dataset>,
        test_data: Dataset,
        feature_domains: Vec<Domain>,
        target_domain: Domain,
    ) -> Result<Self> {
        params.validate()?;
        if seller_data.len() != params.m() {
            return Err(MarketError::SellerCountMismatch {
                expected: params.m(),
                got: seller_data.len(),
            });
        }
        let width = test_data.n_features();
        if seller_data.iter().any(|d| d.n_features() != width) {
            return Err(MarketError::InvalidParameter {
                name: "seller_data",
                reason: "all datasets must share the test set's feature width".to_string(),
            });
        }
        if feature_domains.len() != width {
            return Err(MarketError::InvalidParameter {
                name: "feature_domains",
                reason: format!("expected {width} domains, got {}", feature_domains.len()),
            });
        }
        Ok(Self {
            params,
            seller_data,
            test_data,
            feature_domains,
            target_domain,
            ledger: Ledger::new(),
            rounds_run: 0,
        })
    }

    /// Current market parameters (weights evolve across rounds).
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Replace the active buyer (a new demand arriving at the market).
    ///
    /// # Errors
    /// Propagates buyer-parameter validation errors; the previous buyer is
    /// kept on failure.
    pub fn set_buyer(&mut self, buyer: crate::params::BuyerParams) -> Result<()> {
        buyer.validate()?;
        self.params.buyer = buyer;
        Ok(())
    }

    /// The transaction ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Run one complete trading round (Algorithm 1).
    ///
    /// # Errors
    /// Propagates solver, allocation, LDP, training and valuation errors;
    /// [`MarketError::InsufficientData`] when a seller cannot supply her
    /// allocation.
    pub fn run_round(&mut self, opts: RoundOptions) -> Result<RoundReport> {
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(self.rounds_run as u64));

        // Phase 2: strategy decision.
        let t0 = Instant::now();
        let solution = solve(&self.params)?;
        let strategy = t0.elapsed();

        // Phase 3: data transaction.
        let t1 = Instant::now();
        let chi = round_allocation(self.params.buyer.n_pieces, &solution.chi)?;
        let m = self.params.m();
        let mut epsilons = Vec::with_capacity(m);
        let mut shipped: Vec<Option<Dataset>> = Vec::with_capacity(m);
        #[allow(clippy::needless_range_loop)] // i indexes three parallel per-seller arrays
        for i in 0..m {
            let need = chi[i];
            let have = self.seller_data[i].len();
            if need > have {
                return Err(MarketError::InsufficientData {
                    seller: i,
                    requested: need,
                    available: have,
                });
            }
            let eps = epsilon_for_fidelity(solution.tau[i])?;
            epsilons.push(eps);
            if need == 0 {
                shipped.push(None);
                continue;
            }
            // Line 11: randomly pick χ_i pieces.
            let idx = rand::seq::index::sample(&mut rng, have, need).into_vec();
            let mut piece = self.seller_data[i].select(&idx)?;
            // Lines 12-13: LDP with ε_i on the picked pieces.
            if opts.apply_ldp && eps.is_finite() {
                for (j, dom) in self.feature_domains.iter().enumerate() {
                    let mech = LaplaceMechanism::new(eps, *dom)?;
                    for r in 0..piece.len() {
                        let v = piece.features().row(r)[j];
                        let noisy = mech.perturb(v, &mut rng);
                        piece.features_mut()[(r, j)] = noisy;
                    }
                }
                let tmech = LaplaceMechanism::new(eps, self.target_domain)?;
                for t in piece.targets_mut() {
                    *t = tmech.perturb(*t, &mut rng);
                }
            }
            shipped.push(Some(piece));
        }
        let transaction = t1.elapsed();

        // Phase 4: product production.
        let t2 = Instant::now();
        let parts: Vec<&Dataset> = shipped.iter().filter_map(|d| d.as_ref()).collect();
        let measured_performance = if parts.is_empty() {
            0.0
        } else {
            let merged = Dataset::concat(&parts)?;
            train_and_score(&merged, &self.test_data)
        };
        let production = t2.elapsed();

        // Line 17: Shapley weight update.
        let weights_before = self.params.weights.clone();
        let shapley = match opts.weight_update {
            WeightUpdate::None => Duration::ZERO,
            WeightUpdate::MonteCarlo(mc) => {
                let t3 = Instant::now();
                let utility = ShippedUtility {
                    shipped: &shipped,
                    test: &self.test_data,
                };
                let sv = shapley_monte_carlo(&utility, mc)?;
                let updated = update_weights(&self.params.weights, &sv, opts.weight_retain)?;
                self.params.weights = normalize(&updated)?;
                t3.elapsed()
            }
            WeightUpdate::FastLinReg(fs) => {
                let t3 = Instant::now();
                let d = self.test_data.n_features();
                let stats: Vec<share_ml::suffstats::SufficientStats> = shipped
                    .iter()
                    .map(|piece| match piece {
                        Some(p) => share_ml::suffstats::SufficientStats::from_dataset(p),
                        None => share_ml::suffstats::SufficientStats::zeros(d),
                    })
                    .collect();
                let sv = crate::fast_shapley::linreg_group_shapley(&stats, &self.test_data, fs)?;
                let updated = update_weights(&self.params.weights, &sv, opts.weight_retain)?;
                self.params.weights = normalize(&updated)?;
                t3.elapsed()
            }
        };

        // Phase 5: product transaction — settle payments, write the ledger.
        let compensations: Vec<f64> = (0..m)
            .map(|i| solution.p_d * chi[i] as f64 * solution.tau[i])
            .collect();
        let payments = Payments {
            buyer_payment: solution.p_m * solution.q_m,
            manufacturing_cost: translog_cost(
                &self.params.broker,
                self.params.buyer.n_pieces as f64,
                self.params.buyer.v,
            ),
            compensations,
        };
        let record = TransactionRecord {
            round: self.rounds_run,
            p_m: solution.p_m,
            p_d: solution.p_d,
            tau: solution.tau.clone(),
            chi: chi.clone(),
            epsilons: epsilons.clone(),
            q_d: solution.q_d,
            measured_performance,
            payments,
            weights_before,
            weights_after: self.params.weights.clone(),
        };
        self.ledger.push(record);
        self.rounds_run += 1;

        Ok(RoundReport {
            solution,
            chi,
            epsilons,
            measured_performance,
            timings: PhaseTimings {
                strategy,
                transaction,
                production,
                shapley,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use share_datagen::ccpp::{feature_domains, generate, target_domain, CcppConfig};
    use share_datagen::partition::partition_equal;

    fn build_market(m: usize, n_pieces: usize) -> TradingMarket {
        let data = generate(CcppConfig {
            rows: m * 90,
            seed: 7,
            ..CcppConfig::default()
        })
        .unwrap();
        let test = generate(CcppConfig {
            rows: 400,
            seed: 8,
            ..CcppConfig::default()
        })
        .unwrap();
        let sellers = partition_equal(&data, m).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = MarketParams::paper_defaults(m, &mut rng);
        params.buyer.n_pieces = n_pieces;
        TradingMarket::new(
            params,
            sellers,
            test,
            feature_domains().to_vec(),
            target_domain(),
        )
        .unwrap()
    }

    fn quick_opts() -> RoundOptions {
        RoundOptions {
            weight_update: WeightUpdate::MonteCarlo(McOptions {
                permutations: 5,
                seed: 1,
                ..McOptions::default()
            }),
            ..RoundOptions::default()
        }
    }

    #[test]
    fn full_round_completes_and_validates() {
        let mut market = build_market(10, 200);
        let report = market.run_round(quick_opts()).unwrap();
        assert_eq!(report.chi.iter().sum::<usize>(), 200);
        assert_eq!(report.epsilons.len(), 10);
        assert_eq!(market.ledger().len(), 1);
        assert!(market.ledger().records()[0].validate(200));
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn model_trains_to_positive_performance() {
        // LDP hurts, but the linear structure should survive moderate noise
        // at the equilibrium fidelities... at minimum the metric is finite.
        let mut market = build_market(10, 400);
        let report = market.run_round(quick_opts()).unwrap();
        assert!(report.measured_performance.is_finite());
        assert!(report.measured_performance <= 1.0);
    }

    #[test]
    fn without_ldp_performance_is_high() {
        let mut market = build_market(8, 300);
        let mut opts = quick_opts();
        opts.apply_ldp = false;
        let report = market.run_round(opts).unwrap();
        assert!(
            report.measured_performance > 0.8,
            "clean CCPP model should fit well, got {}",
            report.measured_performance
        );
    }

    #[test]
    fn weights_update_and_renormalize() {
        let mut market = build_market(6, 120);
        let before = market.params().weights.clone();
        market.run_round(quick_opts()).unwrap();
        let after = market.params().weights.clone();
        assert_ne!(before, after);
        assert!((after.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(after.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn skipping_shapley_keeps_weights() {
        let mut market = build_market(6, 120);
        let before = market.params().weights.clone();
        let mut opts = quick_opts();
        opts.weight_update = WeightUpdate::None;
        let report = market.run_round(opts).unwrap();
        assert_eq!(market.params().weights, before);
        assert_eq!(report.timings.shapley, Duration::ZERO);
    }

    #[test]
    fn ledger_payments_conserve() {
        let mut market = build_market(5, 100);
        market.run_round(quick_opts()).unwrap();
        let rec = &market.ledger().records()[0];
        // Compensation per seller = p^D · χ_i · τ_i.
        for i in 0..5 {
            let expect = rec.p_d * rec.chi[i] as f64 * rec.tau[i];
            assert!((rec.payments.compensations[i] - expect).abs() < 1e-12);
        }
        assert!(rec.payments.is_consistent(1e-9));
    }

    #[test]
    fn epsilons_match_fidelities() {
        use share_ldp::fidelity::fidelity;
        let mut market = build_market(5, 100);
        let report = market.run_round(quick_opts()).unwrap();
        for (eps, tau) in report.epsilons.iter().zip(&report.solution.tau) {
            if eps.is_finite() {
                assert!((fidelity(*eps).unwrap() - tau).abs() < 1e-9);
            } else {
                assert_eq!(*tau, 1.0);
            }
        }
    }

    #[test]
    fn insufficient_data_detected() {
        // Sellers own 90 pieces each but N demands more than m·90 from the
        // top seller: shrink datasets to force failure.
        let data = generate(CcppConfig {
            rows: 10,
            seed: 2,
            ..CcppConfig::default()
        })
        .unwrap();
        let test = data.clone();
        let sellers = partition_equal(&data, 2).unwrap(); // 5 pieces each
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = MarketParams::paper_defaults(2, &mut rng);
        params.buyer.n_pieces = 100; // far beyond supply
        let mut market = TradingMarket::new(
            params,
            sellers,
            test,
            feature_domains().to_vec(),
            target_domain(),
        )
        .unwrap();
        assert!(matches!(
            market.run_round(quick_opts()),
            Err(MarketError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mismatched_seller_count_rejected() {
        let data = generate(CcppConfig {
            rows: 100,
            seed: 2,
            ..CcppConfig::default()
        })
        .unwrap();
        let sellers = partition_equal(&data, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let params = MarketParams::paper_defaults(5, &mut rng);
        assert!(matches!(
            TradingMarket::new(
                params,
                sellers,
                data.clone(),
                feature_domains().to_vec(),
                target_domain()
            ),
            Err(MarketError::SellerCountMismatch { .. })
        ));
    }

    #[test]
    fn consecutive_rounds_use_fresh_randomness() {
        let mut market = build_market(5, 100);
        let mut opts = quick_opts();
        opts.weight_update = WeightUpdate::None;
        let a = market.run_round(opts).unwrap();
        let b = market.run_round(opts).unwrap();
        // Same equilibrium (weights unchanged), different sampled data →
        // measured performance differs at least slightly.
        assert!((a.solution.p_m - b.solution.p_m).abs() < 1e-15);
        assert_ne!(a.measured_performance, b.measured_performance);
        assert_eq!(market.ledger().len(), 2);
    }
}
