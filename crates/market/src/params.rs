//! Market participant parameters (paper Table 1 and §6.1 defaults).

use crate::error::{MarketError, Result};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Buyer parameters: product demand and utility shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuyerParams {
    /// Data quantity `N` demanded for manufacturing.
    pub n_pieces: usize,
    /// Required product performance `v` (e.g. explained variance).
    pub v: f64,
    /// Concern weight on dataset quality, `θ₁ ∈ (0, 1)`.
    pub theta1: f64,
    /// Concern weight on product performance, `θ₂ = 1 − θ₁`.
    pub theta2: f64,
    /// Sensitivity to dataset quality, `ρ₁ > 0`.
    pub rho1: f64,
    /// Sensitivity to product performance, `ρ₂ > 0`.
    pub rho2: f64,
}

impl BuyerParams {
    /// The paper's §6.1 defaults: `N = 500`, `v = 0.8`, `θ = (0.5, 0.5)`,
    /// `ρ = (0.5, 250)`.
    pub fn paper_defaults() -> Self {
        Self {
            n_pieces: 500,
            v: 0.8,
            theta1: 0.5,
            theta2: 0.5,
            rho1: 0.5,
            rho2: 250.0,
        }
    }

    /// Validate the parameter domain.
    ///
    /// # Errors
    /// [`MarketError::InvalidParameter`] with the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.n_pieces == 0 {
            return Err(MarketError::InvalidParameter {
                name: "n_pieces",
                reason: "must be positive".to_string(),
            });
        }
        if !(self.v.is_finite() && self.v > 0.0) {
            return Err(MarketError::InvalidParameter {
                name: "v",
                reason: format!("must be positive and finite, got {}", self.v),
            });
        }
        for (name, val) in [("theta1", self.theta1), ("theta2", self.theta2)] {
            if !(val > 0.0 && val < 1.0) {
                return Err(MarketError::InvalidParameter {
                    name,
                    reason: format!("must be in (0, 1), got {val}"),
                });
            }
        }
        if (self.theta1 + self.theta2 - 1.0).abs() > 1e-9 {
            return Err(MarketError::InvalidParameter {
                name: "theta1",
                reason: format!(
                    "theta1 + theta2 must equal 1, got {}",
                    self.theta1 + self.theta2
                ),
            });
        }
        for (name, val) in [("rho1", self.rho1), ("rho2", self.rho2)] {
            if !(val.is_finite() && val > 0.0) {
                return Err(MarketError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {val}"),
                });
            }
        }
        Ok(())
    }
}

/// Broker parameters: the translog manufacturing-cost coefficients
/// `σ₀..σ₅` (paper Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerParams {
    /// Translog coefficients `[σ₀, σ₁, σ₂, σ₃, σ₄, σ₅]`.
    pub sigma: [f64; 6],
}

impl BrokerParams {
    /// The paper's §6.1 defaults:
    /// `σ = (10⁻³, −2, −3, 10⁻³, 2·10⁻³, 10⁻³)`.
    pub fn paper_defaults() -> Self {
        Self {
            sigma: [1e-3, -2.0, -3.0, 1e-3, 2e-3, 1e-3],
        }
    }

    /// Validate the parameter domain (finiteness).
    ///
    /// # Errors
    /// [`MarketError::InvalidParameter`] when any coefficient is non-finite.
    pub fn validate(&self) -> Result<()> {
        if self.sigma.iter().any(|s| !s.is_finite()) {
            return Err(MarketError::InvalidParameter {
                name: "sigma",
                reason: "all translog coefficients must be finite".to_string(),
            });
        }
        Ok(())
    }
}

/// One seller's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SellerParams {
    /// Privacy sensitivity `λ_i > 0` (paper Eq. 11).
    pub lambda: f64,
}

impl SellerParams {
    /// Validate the parameter domain.
    ///
    /// # Errors
    /// [`MarketError::InvalidParameter`] for a non-positive λ.
    pub fn validate(&self) -> Result<()> {
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(MarketError::InvalidParameter {
                name: "lambda",
                reason: format!("must be positive and finite, got {}", self.lambda),
            });
        }
        Ok(())
    }
}

/// Which privacy-loss functional form sellers face (paper §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// `L_i(τ) = λ_i (χ_i τ_i)²` — the paper's primary form (Eq. 11), solved
    /// in closed form by direct derivation (Eq. 20).
    #[default]
    Quadratic,
    /// `L_i(τ) = λ_i χ_i τ_i²` — the alternative form used to motivate the
    /// mean-field method (Eq. 22/23).
    LinearChi,
}

/// Full market configuration: one buyer, one broker, `m` sellers, and the
/// broker-maintained data weights `ω`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketParams {
    /// Buyer parameters.
    pub buyer: BuyerParams,
    /// Broker parameters.
    pub broker: BrokerParams,
    /// Per-seller parameters (`m` entries).
    pub sellers: Vec<SellerParams>,
    /// Broker-maintained dataset weights `ω_i > 0` (`m` entries).
    pub weights: Vec<f64>,
    /// Privacy-loss model in force.
    pub loss_model: LossModel,
}

impl MarketParams {
    /// The paper's full §6.1 default market: `m` sellers with
    /// `λ_i ~ U(0, 1)` (exclusive of 0), uniform initial weights `1/m`.
    pub fn paper_defaults<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Self {
        let sellers = (0..m)
            .map(|_| SellerParams {
                // U(0,1) with a floor to keep 1/λ finite.
                lambda: rng.random_range(0.01..1.0),
            })
            .collect();
        Self {
            buyer: BuyerParams::paper_defaults(),
            broker: BrokerParams::paper_defaults(),
            sellers,
            weights: vec![1.0 / m as f64; m],
            loss_model: LossModel::Quadratic,
        }
    }

    /// [`paper_defaults`](Self::paper_defaults) writing into an existing
    /// configuration, reusing its seller and weight allocations. Draws from
    /// `rng` in the same order as `paper_defaults`, so for the same RNG
    /// state the result is identical — the serving engine's per-connection
    /// scratch depends on both properties (no allocation in the steady
    /// state, byte-identical materialization).
    pub fn paper_defaults_into<R: Rng + ?Sized>(m: usize, rng: &mut R, dst: &mut Self) {
        dst.buyer = BuyerParams::paper_defaults();
        dst.broker = BrokerParams::paper_defaults();
        dst.sellers.clear();
        dst.sellers.reserve(m);
        for _ in 0..m {
            dst.sellers.push(SellerParams {
                // U(0,1) with a floor to keep 1/λ finite.
                lambda: rng.random_range(0.01..1.0),
            });
        }
        dst.weights.clear();
        dst.weights.resize(m, 1.0 / m as f64);
        dst.loss_model = LossModel::Quadratic;
    }

    /// A zero-seller placeholder for scratch buffers that are always
    /// overwritten (e.g. by [`paper_defaults_into`](Self::paper_defaults_into))
    /// before use. Deliberately fails [`validate`](Self::validate).
    pub fn empty() -> Self {
        Self {
            buyer: BuyerParams::paper_defaults(),
            broker: BrokerParams::paper_defaults(),
            sellers: Vec::new(),
            weights: Vec::new(),
            loss_model: LossModel::Quadratic,
        }
    }

    /// Number of sellers `m`.
    pub fn m(&self) -> usize {
        self.sellers.len()
    }

    /// Per-seller λ values as a vector.
    pub fn lambdas(&self) -> Vec<f64> {
        self.sellers.iter().map(|s| s.lambda).collect()
    }

    /// Validate the whole configuration.
    ///
    /// # Errors
    /// - [`MarketError::NoSellers`] for an empty seller list.
    /// - [`MarketError::SellerCountMismatch`] when weights and sellers
    ///   disagree.
    /// - [`MarketError::InvalidParameter`] for out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        self.buyer.validate()?;
        self.broker.validate()?;
        if self.sellers.is_empty() {
            return Err(MarketError::NoSellers);
        }
        if self.weights.len() != self.sellers.len() {
            return Err(MarketError::SellerCountMismatch {
                expected: self.sellers.len(),
                got: self.weights.len(),
            });
        }
        for s in &self.sellers {
            s.validate()?;
        }
        if self.weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
            return Err(MarketError::InvalidParameter {
                name: "weights",
                reason: "all weights must be positive and finite".to_string(),
            });
        }
        Ok(())
    }

    /// `Σ_i 1/λ_i` — the aggregate privacy-tolerance term appearing in the
    /// closed forms (Eq. 25–27).
    pub fn sum_inv_lambda(&self) -> f64 {
        self.sellers.iter().map(|s| 1.0 / s.lambda).sum()
    }

    /// `Σ_j √(ω_j/λ_j)` — the aggregate appearing in Eq. 20.
    pub fn sum_sqrt_w_over_lambda(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.sellers)
            .map(|(w, s)| (w / s.lambda).sqrt())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults_match_section_6_1() {
        let b = BuyerParams::paper_defaults();
        assert_eq!(b.n_pieces, 500);
        assert_eq!(b.v, 0.8);
        assert_eq!(b.theta1, 0.5);
        assert_eq!(b.rho2, 250.0);
        let br = BrokerParams::paper_defaults();
        assert_eq!(br.sigma, [1e-3, -2.0, -3.0, 1e-3, 2e-3, 1e-3]);
    }

    #[test]
    fn full_default_market_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = MarketParams::paper_defaults(100, &mut rng);
        assert_eq!(p.m(), 100);
        p.validate().unwrap();
        assert!(p.lambdas().iter().all(|&l| (0.01..1.0).contains(&l)));
        assert!((p.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_defaults_into_is_identical_and_reusable() {
        let mut a = StdRng::seed_from_u64(42);
        let fresh = MarketParams::paper_defaults(30, &mut a);
        let mut b = StdRng::seed_from_u64(42);
        let mut dst = MarketParams::empty();
        MarketParams::paper_defaults_into(30, &mut b, &mut dst);
        assert_eq!(fresh, dst);
        // Reuse with a smaller m must not leave stale sellers or weights.
        let mut c = StdRng::seed_from_u64(7);
        MarketParams::paper_defaults_into(4, &mut c, &mut dst);
        let mut d = StdRng::seed_from_u64(7);
        assert_eq!(MarketParams::paper_defaults(4, &mut d), dst);
    }

    #[test]
    fn buyer_validation_catches_domain_errors() {
        let mut b = BuyerParams::paper_defaults();
        b.n_pieces = 0;
        assert!(b.validate().is_err());
        let mut b = BuyerParams::paper_defaults();
        b.v = -0.1;
        assert!(b.validate().is_err());
        let mut b = BuyerParams::paper_defaults();
        b.theta1 = 0.6; // theta1 + theta2 != 1
        assert!(b.validate().is_err());
        let mut b = BuyerParams::paper_defaults();
        b.theta1 = 0.0;
        b.theta2 = 1.0;
        assert!(b.validate().is_err());
        let mut b = BuyerParams::paper_defaults();
        b.rho1 = 0.0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn broker_validation_catches_nan() {
        let mut br = BrokerParams::paper_defaults();
        br.sigma[3] = f64::NAN;
        assert!(br.validate().is_err());
    }

    #[test]
    fn seller_validation() {
        assert!(SellerParams { lambda: 0.5 }.validate().is_ok());
        assert!(SellerParams { lambda: 0.0 }.validate().is_err());
        assert!(SellerParams { lambda: -1.0 }.validate().is_err());
        assert!(SellerParams {
            lambda: f64::INFINITY
        }
        .validate()
        .is_err());
    }

    #[test]
    fn market_validation_checks_consistency() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = MarketParams::paper_defaults(5, &mut rng);
        p.weights.pop();
        assert!(matches!(
            p.validate(),
            Err(MarketError::SellerCountMismatch { .. })
        ));
        let mut p2 = MarketParams::paper_defaults(5, &mut rng);
        p2.sellers.clear();
        p2.weights.clear();
        assert!(matches!(p2.validate(), Err(MarketError::NoSellers)));
        let mut p3 = MarketParams::paper_defaults(5, &mut rng);
        p3.weights[0] = 0.0;
        assert!(p3.validate().is_err());
    }

    #[test]
    fn aggregates_match_manual_computation() {
        let p = MarketParams {
            buyer: BuyerParams::paper_defaults(),
            broker: BrokerParams::paper_defaults(),
            sellers: vec![SellerParams { lambda: 0.25 }, SellerParams { lambda: 0.5 }],
            weights: vec![1.0, 4.0],
            loss_model: LossModel::Quadratic,
        };
        assert!((p.sum_inv_lambda() - 6.0).abs() < 1e-12);
        // √(1/0.25) + √(4/0.5) = 2 + √8.
        assert!((p.sum_sqrt_w_over_lambda() - (2.0 + 8.0f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = MarketParams::paper_defaults(3, &mut rng);
        let json = serde_json::to_string(&p).unwrap();
        let back: MarketParams = serde_json::from_str(&json).unwrap();
        // JSON float formatting may lose the last ULP; compare approximately.
        assert_eq!(back.m(), p.m());
        assert_eq!(back.buyer, p.buyer);
        assert_eq!(back.broker, p.broker);
        assert_eq!(back.loss_model, p.loss_model);
        for (a, b) in p.lambdas().iter().zip(back.lambdas()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
