//! Fast Shapley values for linear-regression products.
//!
//! The generic Monte-Carlo estimator re-trains a model per coalition, which
//! is hopeless at the paper's Fig. 3 scale (m up to 10,000 sellers over a
//! 10⁶-row corpus, 100 permutations). Because OLS/ridge training depends on
//! the data only through additive sufficient statistics
//! ([`SufficientStats`]), a permutation can be scanned **incrementally**:
//! merging one seller into the running statistics costs O(d²) and solving
//! costs O(d³), independent of her row count. One permutation over all `m`
//! sellers is O(m·(d³ + |test|·d)) — the same estimator, exactly, orders of
//! magnitude faster.

use crate::error::{MarketError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use share_ml::dataset::Dataset;
use share_ml::suffstats::SufficientStats;

/// Options for [`linreg_group_shapley`].
#[derive(Debug, Clone, Copy)]
pub struct FastShapleyOptions {
    /// Permutations to sample (the paper uses 100).
    pub permutations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Ridge used when solving coalitions (degenerate small coalitions need
    /// it).
    pub ridge: f64,
}

impl Default for FastShapleyOptions {
    fn default() -> Self {
        Self {
            permutations: 100,
            seed: 0xFA57,
            ridge: 1e-6,
        }
    }
}

/// Monte-Carlo permutation Shapley over sellers whose product is a linear
/// regression scored by explained variance on `test`. `stats[i]` holds the
/// sufficient statistics of seller `i`'s shipped data (empty statistics are
/// fine — that seller contributes nothing).
///
/// # Errors
/// [`MarketError::InvalidParameter`] for empty input or zero permutations.
pub fn linreg_group_shapley(
    stats: &[SufficientStats],
    test: &Dataset,
    opts: FastShapleyOptions,
) -> Result<Vec<f64>> {
    if stats.is_empty() {
        return Err(MarketError::InvalidParameter {
            name: "stats",
            reason: "at least one seller is required".to_string(),
        });
    }
    if opts.permutations == 0 {
        return Err(MarketError::InvalidParameter {
            name: "permutations",
            reason: "must be positive".to_string(),
        });
    }
    let m = stats.len();
    let d = test.n_features();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut acc = vec![0.0f64; m];
    let mut perm: Vec<usize> = (0..m).collect();
    for _ in 0..opts.permutations {
        perm.shuffle(&mut rng);
        let mut running = SufficientStats::zeros(d);
        let mut prev = 0.0;
        for &i in &perm {
            running.merge(&stats[i]);
            let util = running.explained_variance(test, opts.ridge).unwrap_or(0.0);
            acc[i] += util - prev;
            prev = util;
        }
    }
    Ok(acc
        .into_iter()
        .map(|v| v / opts.permutations as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use share_numerics::matrix::Matrix;
    use share_valuation::monte_carlo::{shapley_monte_carlo, McOptions};
    use share_valuation::utility::CoalitionUtility;

    fn linear(n: usize, offset: usize, noise: f64) -> Dataset {
        let mut feats = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for k in 0..n {
            let i = (k + offset) as f64;
            let x0 = (i * 0.37) % 10.0;
            let x1 = (i * 0.73).sin() * 3.0;
            feats.push(x0);
            feats.push(x1);
            // "noise" here is deterministic corruption so tests stay seedless.
            y.push(2.0 + 1.5 * x0 - x1 + noise * (i * 12.9898).sin() * 43758.5453 % 7.0);
        }
        Dataset::new(Matrix::from_vec(n, 2, feats).unwrap(), y).unwrap()
    }

    /// Reference slow utility: re-train per coalition via suffstats concat.
    struct SlowUtility<'a> {
        groups: &'a [Dataset],
        test: &'a Dataset,
        ridge: f64,
    }

    impl CoalitionUtility for SlowUtility<'_> {
        fn n_players(&self) -> usize {
            self.groups.len()
        }
        fn utility(&self, c: &[usize]) -> f64 {
            if c.is_empty() {
                return 0.0;
            }
            let mut s = SufficientStats::zeros(self.test.n_features());
            for &g in c {
                s.merge(&SufficientStats::from_dataset(&self.groups[g]));
            }
            s.explained_variance(self.test, self.ridge).unwrap_or(0.0)
        }
    }

    #[test]
    fn matches_generic_estimator_exactly_for_same_seed_free_sum() {
        // Efficiency: both estimators telescopes to U(grand) per permutation,
        // so their totals agree exactly.
        let groups: Vec<Dataset> = (0..6).map(|g| linear(20, g * 20, 0.0)).collect();
        let test = linear(30, 500, 0.0);
        let stats: Vec<SufficientStats> =
            groups.iter().map(SufficientStats::from_dataset).collect();
        let opts = FastShapleyOptions {
            permutations: 8,
            seed: 3,
            ridge: 1e-6,
        };
        let fast = linreg_group_shapley(&stats, &test, opts).unwrap();
        let slow_u = SlowUtility {
            groups: &groups,
            test: &test,
            ridge: 1e-6,
        };
        let grand = slow_u.utility(&[0, 1, 2, 3, 4, 5]);
        let total: f64 = fast.iter().sum();
        assert!((total - grand).abs() < 1e-9, "{total} vs {grand}");
    }

    #[test]
    fn close_to_generic_estimator_in_value() {
        let groups: Vec<Dataset> = (0..5)
            .map(|g| linear(15, g * 15, if g >= 3 { 0.8 } else { 0.0 }))
            .collect();
        let test = linear(40, 400, 0.0);
        let stats: Vec<SufficientStats> =
            groups.iter().map(SufficientStats::from_dataset).collect();
        let fast = linreg_group_shapley(
            &stats,
            &test,
            FastShapleyOptions {
                permutations: 600,
                seed: 1,
                ridge: 1e-6,
            },
        )
        .unwrap();
        let slow = shapley_monte_carlo(
            &SlowUtility {
                groups: &groups,
                test: &test,
                ridge: 1e-6,
            },
            McOptions {
                permutations: 600,
                seed: 9,
                ..McOptions::default()
            },
        )
        .unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 0.05, "fast {f} vs slow {s}");
        }
    }

    #[test]
    fn clean_sellers_outvalue_corrupted_ones() {
        let groups: Vec<Dataset> = (0..4)
            .map(|g| linear(25, g * 25, if g >= 2 { 1.0 } else { 0.0 }))
            .collect();
        let test = linear(50, 300, 0.0);
        let stats: Vec<SufficientStats> =
            groups.iter().map(SufficientStats::from_dataset).collect();
        let sv = linreg_group_shapley(&stats, &test, FastShapleyOptions::default()).unwrap();
        let clean = (sv[0] + sv[1]) / 2.0;
        let dirty = (sv[2] + sv[3]) / 2.0;
        assert!(clean > dirty, "clean {clean} vs dirty {dirty}");
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let groups: Vec<Dataset> = (0..4).map(|g| linear(10, g * 10, 0.3)).collect();
        let test = linear(20, 200, 0.0);
        let stats: Vec<SufficientStats> =
            groups.iter().map(SufficientStats::from_dataset).collect();
        let o1 = FastShapleyOptions {
            permutations: 5,
            seed: 7,
            ridge: 1e-6,
        };
        let a = linreg_group_shapley(&stats, &test, o1).unwrap();
        let b = linreg_group_shapley(&stats, &test, o1).unwrap();
        assert_eq!(a, b);
        let o2 = FastShapleyOptions { seed: 8, ..o1 };
        let c = linreg_group_shapley(&stats, &test, o2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn empty_seller_contributes_nothing() {
        let groups: Vec<Dataset> = (0..3).map(|g| linear(20, g * 20, 0.0)).collect();
        let test = linear(30, 100, 0.0);
        let mut stats: Vec<SufficientStats> =
            groups.iter().map(SufficientStats::from_dataset).collect();
        stats.push(SufficientStats::zeros(2)); // a seller who shipped nothing
        let sv = linreg_group_shapley(&stats, &test, FastShapleyOptions::default()).unwrap();
        assert!(sv[3].abs() < 1e-12, "{sv:?}");
    }

    #[test]
    fn invalid_input_rejected() {
        let test = linear(10, 0, 0.0);
        assert!(linreg_group_shapley(&[], &test, FastShapleyOptions::default()).is_err());
        let stats = vec![SufficientStats::zeros(2)];
        let opts = FastShapleyOptions {
            permutations: 0,
            ..FastShapleyOptions::default()
        };
        assert!(linreg_group_shapley(&stats, &test, opts).is_err());
    }
}
