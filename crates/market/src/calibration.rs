//! Parameter calibration from historical records — the paper's §7
//! deployment challenge: *"the deficiency of real-world historical trading
//! records brings about the challenge of parameter fitting for each party."*
//!
//! Two fitters are provided:
//!
//! - [`fit_translog`]: the broker's cost coefficients `σ₀..σ₅` (Eq. 8) from
//!   observed `(N, v, cost)` triples. The translog form is log-linear in its
//!   coefficients, so the fit is an ordinary least-squares problem in the
//!   regressors `[1, ln N, ln v, ½ln²N, ½ln²v, ln N·ln v]`.
//! - [`fit_lambda`]: a seller's privacy sensitivity `λ_i` from observed
//!   `(p^D, χ, τ)` responses. At an interior Stage-3 optimum the first-order
//!   condition of Eq. 18 gives `λ_i = p^D·Σω_jτ_j / (2N·ω_i·τ_i²)`; with
//!   per-observation aggregates recorded in the ledger this reduces to a
//!   ratio estimator averaged across rounds.

use crate::error::{MarketError, Result};
use crate::ledger::Ledger;
use crate::params::BrokerParams;
use share_numerics::lstsq::{solve_lstsq, Backend};
use share_numerics::matrix::Matrix;

/// One observed manufacturing run for translog fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostObservation {
    /// Data quantity used.
    pub n: f64,
    /// Product performance achieved.
    pub v: f64,
    /// Observed manufacturing cost (must be positive).
    pub cost: f64,
}

/// Fit the translog coefficients `σ₀..σ₅` by OLS on `ln cost`.
///
/// # Errors
/// - [`MarketError::InvalidParameter`] with fewer than 6 observations or
///   non-positive `n`/`v`/`cost`.
/// - [`MarketError::Numerics`] for a degenerate design (e.g. all
///   observations at a single `(N, v)` point).
pub fn fit_translog(observations: &[CostObservation]) -> Result<BrokerParams> {
    if observations.len() < 6 {
        return Err(MarketError::InvalidParameter {
            name: "observations",
            reason: format!(
                "translog has 6 coefficients; need >= 6 observations, got {}",
                observations.len()
            ),
        });
    }
    let mut design = Vec::with_capacity(observations.len() * 6);
    let mut target = Vec::with_capacity(observations.len());
    for (k, o) in observations.iter().enumerate() {
        if o.n <= 0.0 || o.v <= 0.0 || o.cost <= 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "observations",
                reason: format!("observation {k} must have positive n, v, cost"),
            });
        }
        let ln_n = o.n.ln();
        let ln_v = o.v.ln();
        design.extend_from_slice(&[
            1.0,
            ln_n,
            ln_v,
            0.5 * ln_n * ln_n,
            0.5 * ln_v * ln_v,
            ln_n * ln_v,
        ]);
        target.push(o.cost.ln());
    }
    let a = Matrix::from_vec(observations.len(), 6, design)?;
    let sigma = solve_lstsq(&a, &target, 0.0, Backend::Qr)?;
    Ok(BrokerParams {
        sigma: [sigma[0], sigma[1], sigma[2], sigma[3], sigma[4], sigma[5]],
    })
}

/// Predicted-vs-observed relative error of a fitted translog on a held-out
/// sample (diagnostic for the calibration quality).
pub fn translog_fit_error(broker: &BrokerParams, observations: &[CostObservation]) -> f64 {
    observations
        .iter()
        .map(|o| {
            let pred = crate::profit::translog_cost(broker, o.n, o.v);
            ((pred - o.cost) / o.cost).abs()
        })
        .fold(0.0_f64, f64::max)
}

/// One observed seller response for λ fitting: taken from a ledger round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SellerObservation {
    /// Posted data price of the round.
    pub p_d: f64,
    /// The round's weighted fidelity aggregate `Σ_j ω_j·τ_j`.
    pub weighted_tau_sum: f64,
    /// Demanded quantity `N` of the round.
    pub n: f64,
    /// The seller's weight `ω_i` in the round.
    pub omega: f64,
    /// The seller's chosen fidelity `τ_i` (must be interior: `0 < τ < 1`).
    pub tau: f64,
}

/// Estimate a seller's `λ_i` from interior-response observations by the
/// Eq. 18 first-order condition, averaging the per-round ratio estimates.
///
/// # Errors
/// [`MarketError::InvalidParameter`] when no observation is interior
/// (`0 < τ < 1`) or inputs are non-positive.
pub fn fit_lambda(observations: &[SellerObservation]) -> Result<f64> {
    let mut estimates = Vec::new();
    for (k, o) in observations.iter().enumerate() {
        if o.p_d <= 0.0 || o.weighted_tau_sum <= 0.0 || o.n <= 0.0 || o.omega <= 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "observations",
                reason: format!("observation {k} has non-positive fields"),
            });
        }
        if o.tau <= 0.0 || o.tau >= 1.0 {
            continue; // boundary responses carry no first-order information
        }
        estimates.push(o.p_d * o.weighted_tau_sum / (2.0 * o.n * o.omega * o.tau * o.tau));
    }
    if estimates.is_empty() {
        return Err(MarketError::InvalidParameter {
            name: "observations",
            reason: "no interior (0 < tau < 1) observations to fit from".to_string(),
        });
    }
    Ok(estimates.iter().sum::<f64>() / estimates.len() as f64)
}

/// Extract [`SellerObservation`]s for seller `i` from a ledger.
///
/// # Errors
/// [`MarketError::InvalidParameter`] when the ledger is empty or the seller
/// index is out of range.
pub fn seller_observations(
    ledger: &Ledger,
    seller: usize,
    n: usize,
) -> Result<Vec<SellerObservation>> {
    if ledger.is_empty() {
        return Err(MarketError::InvalidParameter {
            name: "ledger",
            reason: "no recorded rounds".to_string(),
        });
    }
    let mut out = Vec::with_capacity(ledger.len());
    for rec in ledger.records() {
        let Some(&tau) = rec.tau.get(seller) else {
            return Err(MarketError::InvalidParameter {
                name: "seller",
                reason: format!("index {seller} out of range ({})", rec.tau.len()),
            });
        };
        let weighted_tau_sum: f64 = rec
            .weights_before
            .iter()
            .zip(&rec.tau)
            .map(|(w, t)| w * t)
            .sum();
        out.push(SellerObservation {
            p_d: rec.p_d,
            weighted_tau_sum,
            n: n as f64,
            omega: rec.weights_before[seller],
            tau,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{MarketParams, SellerParams};
    use crate::profit::translog_cost;
    use crate::stage3::tau_direct;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn synth_cost_observations(broker: &BrokerParams, k: usize, seed: u64) -> Vec<CostObservation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let n: f64 = rng.random_range(100.0..10_000.0);
                let v: f64 = rng.random_range(0.3..0.99);
                CostObservation {
                    n,
                    v,
                    cost: translog_cost(broker, n, v),
                }
            })
            .collect()
    }

    #[test]
    fn translog_recovers_paper_defaults_exactly() {
        let truth = BrokerParams::paper_defaults();
        let obs = synth_cost_observations(&truth, 40, 1);
        let fitted = fit_translog(&obs).unwrap();
        for (f, t) in fitted.sigma.iter().zip(&truth.sigma) {
            assert!((f - t).abs() < 1e-6, "{f} vs {t}");
        }
        assert!(translog_fit_error(&fitted, &obs) < 1e-8);
    }

    #[test]
    fn translog_robust_to_multiplicative_noise() {
        let truth = BrokerParams {
            sigma: [0.5, 1.2, -0.7, 0.01, 0.02, -0.005],
        };
        let mut obs = synth_cost_observations(&truth, 200, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for o in &mut obs {
            o.cost *= (0.05 * (rng.random::<f64>() - 0.5)).exp();
        }
        let fitted = fit_translog(&obs).unwrap();
        // Dominant elasticities recovered within a few percent.
        assert!((fitted.sigma[1] - 1.2).abs() < 0.1, "{:?}", fitted.sigma);
        assert!((fitted.sigma[2] + 0.7).abs() < 0.1, "{:?}", fitted.sigma);
    }

    #[test]
    fn translog_rejects_bad_input() {
        assert!(fit_translog(&[]).is_err());
        let few = vec![
            CostObservation {
                n: 10.0,
                v: 0.5,
                cost: 1.0
            };
            5
        ];
        assert!(fit_translog(&few).is_err());
        let mut bad = synth_cost_observations(&BrokerParams::paper_defaults(), 10, 4);
        bad[3].cost = -1.0;
        assert!(fit_translog(&bad).is_err());
    }

    #[test]
    fn translog_degenerate_design_detected() {
        // All observations at the same (N, v): columns collinear.
        let one = CostObservation {
            n: 500.0,
            v: 0.8,
            cost: 0.001,
        };
        let obs = vec![one; 10];
        assert!(fit_translog(&obs).is_err());
    }

    #[test]
    fn lambda_recovered_from_equilibrium_responses() {
        // Generate interior responses at several prices and re-fit λ₀.
        let mut rng = StdRng::seed_from_u64(5);
        let params = MarketParams::paper_defaults(10, &mut rng);
        let truth = params.sellers[0].lambda;
        let mut obs = Vec::new();
        for &p_d in &[0.005, 0.01, 0.02, 0.04] {
            let tau = tau_direct(&params, p_d).unwrap();
            let wts: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
            obs.push(SellerObservation {
                p_d,
                weighted_tau_sum: wts,
                n: params.buyer.n_pieces as f64,
                omega: params.weights[0],
                tau: tau[0],
            });
        }
        let fitted = fit_lambda(&obs).unwrap();
        assert!(
            (fitted - truth).abs() < 1e-9 * truth.max(1.0),
            "fitted {fitted} vs true {truth}"
        );
    }

    #[test]
    fn lambda_skips_boundary_responses() {
        let interior = SellerObservation {
            p_d: 0.01,
            weighted_tau_sum: 0.05,
            n: 500.0,
            omega: 0.1,
            tau: 0.02,
        };
        let boundary = SellerObservation {
            tau: 1.0,
            ..interior
        };
        // Only the interior one contributes.
        let both = fit_lambda(&[interior, boundary]).unwrap();
        let single = fit_lambda(&[interior]).unwrap();
        assert_eq!(both, single);
        // All boundary: no information.
        assert!(fit_lambda(&[boundary]).is_err());
    }

    #[test]
    fn lambda_rejects_nonpositive_fields() {
        let bad = SellerObservation {
            p_d: -0.01,
            weighted_tau_sum: 0.05,
            n: 500.0,
            omega: 0.1,
            tau: 0.02,
        };
        assert!(fit_lambda(&[bad]).is_err());
    }

    #[test]
    fn end_to_end_lambda_fit_from_solver_rounds() {
        // Simulate several rounds at different buyer demands; fit each λ and
        // verify the whole vector is recovered.
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = MarketParams::paper_defaults(6, &mut rng);
        params.sellers[2] = SellerParams { lambda: 0.77 };
        let mut per_seller: Vec<Vec<SellerObservation>> = vec![Vec::new(); 6];
        for &p_d in &[0.004, 0.009, 0.018] {
            let tau = tau_direct(&params, p_d).unwrap();
            let wts: f64 = params.weights.iter().zip(&tau).map(|(w, t)| w * t).sum();
            for i in 0..6 {
                per_seller[i].push(SellerObservation {
                    p_d,
                    weighted_tau_sum: wts,
                    n: params.buyer.n_pieces as f64,
                    omega: params.weights[i],
                    tau: tau[i],
                });
            }
        }
        for (i, obs) in per_seller.iter().enumerate() {
            let fitted = fit_lambda(obs).unwrap();
            let truth = params.sellers[i].lambda;
            assert!(
                (fitted - truth).abs() < 1e-9,
                "seller {i}: {fitted} vs {truth}"
            );
        }
    }
}
