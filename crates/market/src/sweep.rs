//! Parameter-influence experiments (paper §6.4, Figs. 4–8).
//!
//! Each sweep varies one parameter, re-solves the SNE at every grid point,
//! and records the strategies `(p^M*, p^D*, τ₁*, τ₂*)` and the profits
//! `(Φ, Ω, Ψ₁, Ψ₂)` — the two panels of each figure. Grid points are
//! independent, so sweeps fan out across threads via
//! [`share_numerics::parallel`]; results come back in grid order either
//! way.

use crate::error::Result;
use crate::params::MarketParams;
use crate::solver::{solve, SneSolution};
use serde::{Deserialize, Serialize};
use share_numerics::optimize::grid::linspace;
use share_numerics::parallel::{auto_threads, try_parallel_map};

/// One grid point of a parameter sweep: the varied value, the equilibrium
/// strategies and the profits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfluencePoint {
    /// The swept parameter value.
    pub x: f64,
    /// Buyer's equilibrium product price `p^M*`.
    pub p_m: f64,
    /// Broker's equilibrium data price `p^D*`.
    pub p_d: f64,
    /// Seller 1's equilibrium fidelity `τ₁*`.
    pub tau1: f64,
    /// Seller 2's equilibrium fidelity `τ₂*` (tracking the paper's S₂
    /// control line; equals `τ₁` in single-seller markets).
    pub tau2: f64,
    /// Buyer profit Φ*.
    pub buyer: f64,
    /// Broker profit Ω*.
    pub broker: f64,
    /// Seller 1 profit Ψ₁*.
    pub seller1: f64,
    /// Seller 2 profit Ψ₂*.
    pub seller2: f64,
}

impl InfluencePoint {
    fn from_solution(x: f64, s: &SneSolution) -> Self {
        let second = if s.tau.len() > 1 { 1 } else { 0 };
        Self {
            x,
            p_m: s.p_m,
            p_d: s.p_d,
            tau1: s.tau[0],
            tau2: s.tau[second],
            buyer: s.buyer_profit,
            broker: s.broker_profit,
            seller1: s.seller_profits[0],
            seller2: s.seller_profits[second],
        }
    }
}

fn run_sweep<F>(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
    apply: F,
) -> Result<Vec<InfluencePoint>>
where
    F: Fn(&mut MarketParams, f64) + Sync,
{
    let grid = linspace(lo, hi, points.max(2))?;
    try_parallel_map(&grid, auto_threads(grid.len()), |_, &x| {
        let mut params = base.clone();
        apply(&mut params, x);
        let sol = solve(&params)?;
        Ok(InfluencePoint::from_solution(x, &sol))
    })
}

/// Fig. 4: sweep the buyer's dataset-quality concern `θ₁` (with
/// `θ₂ = 1 − θ₁`). The paper uses `θ₁ ∈ [0.1, 0.9]`.
///
/// # Errors
/// Propagates solver errors.
pub fn sweep_theta1(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Vec<InfluencePoint>> {
    run_sweep(base, lo, hi, points, |p, x| {
        p.buyer.theta1 = x;
        p.buyer.theta2 = 1.0 - x;
    })
}

/// Fig. 5: sweep the buyer's dataset-quality sensitivity `ρ₁`.
///
/// # Errors
/// Propagates solver errors.
pub fn sweep_rho1(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Vec<InfluencePoint>> {
    run_sweep(base, lo, hi, points, |p, x| p.buyer.rho1 = x)
}

/// Fig. 6: sweep the buyer's performance sensitivity `ρ₂`.
///
/// # Errors
/// Propagates solver errors.
pub fn sweep_rho2(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Vec<InfluencePoint>> {
    run_sweep(base, lo, hi, points, |p, x| p.buyer.rho2 = x)
}

/// Fig. 7: sweep seller 1's data weight `ω₁`. The paper uses
/// `ω₁ ∈ [0.1, 0.6]`.
///
/// # Errors
/// Propagates solver errors.
pub fn sweep_omega1(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Vec<InfluencePoint>> {
    run_sweep(base, lo, hi, points, |p, x| p.weights[0] = x)
}

/// Fig. 8: sweep seller 1's privacy sensitivity `λ₁`.
///
/// # Errors
/// Propagates solver errors.
pub fn sweep_lambda1(
    base: &MarketParams,
    lo: f64,
    hi: f64,
    points: usize,
) -> Result<Vec<InfluencePoint>> {
    run_sweep(base, lo, hi, points, |p, x| p.sellers[0].lambda = x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(100, &mut rng)
    }

    fn monotone_increasing(xs: &[f64]) -> bool {
        xs.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    fn monotone_decreasing(xs: &[f64]) -> bool {
        xs.windows(2).all(|w| w[1] <= w[0] + 1e-12)
    }

    #[test]
    fn fig4_theta1_strategies_rise_buyer_profit_falls() {
        // Paper Fig. 4: all strategies rise ~linearly with θ₁; Φ decreases;
        // Ω and Ψ increase.
        let series = sweep_theta1(&market(1), 0.1, 0.9, 9).unwrap();
        assert!(monotone_increasing(
            &series.iter().map(|p| p.p_m).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.p_d).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.tau1).collect::<Vec<_>>()
        ));
        assert!(monotone_decreasing(
            &series.iter().map(|p| p.buyer).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.broker).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.seller1).collect::<Vec<_>>()
        ));
    }

    #[test]
    fn fig5_rho1_buyer_profit_surges_strategies_saturate() {
        // Paper Fig. 5: Φ surges with ρ₁; strategies grow then flatten
        // (diminishing log utility).
        let series = sweep_rho1(&market(2), 0.1, 5.0, 25).unwrap();
        assert!(monotone_increasing(
            &series.iter().map(|p| p.buyer).collect::<Vec<_>>()
        ));
        // Saturation: relative change of p^M per grid step shrinks.
        let pm: Vec<f64> = series.iter().map(|p| p.p_m).collect();
        let first_step = pm[1] - pm[0];
        let last_step = pm[24] - pm[23];
        assert!(
            last_step < first_step * 0.5,
            "expected saturation: first {first_step}, last {last_step}"
        );
    }

    #[test]
    fn fig6_rho2_only_buyer_profit_moves() {
        // Paper Fig. 6: ρ₂ barely affects strategies; only Φ rises.
        let series = sweep_rho2(&market(3), 50.0, 500.0, 10).unwrap();
        assert!(monotone_increasing(
            &series.iter().map(|p| p.buyer).collect::<Vec<_>>()
        ));
        let rel_spread = |xs: Vec<f64>| {
            let lo = xs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let hi = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            (hi - lo) / hi.abs().max(1e-12)
        };
        assert!(rel_spread(series.iter().map(|p| p.p_m).collect()) < 1e-9);
        assert!(rel_spread(series.iter().map(|p| p.broker).collect()) < 1e-9);
        assert!(rel_spread(series.iter().map(|p| p.seller1).collect()) < 1e-9);
    }

    #[test]
    fn fig7_omega1_affects_only_seller1_strategy() {
        // Paper Fig. 7: ω₁ moves τ₁ but not p^M, p^D, nor (noticeably) τ₂.
        let series = sweep_omega1(&market(4), 0.1, 0.6, 6).unwrap();
        let rel_spread = |xs: Vec<f64>| {
            let lo = xs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let hi = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            (hi - lo) / hi.abs().max(1e-12)
        };
        assert!(rel_spread(series.iter().map(|p| p.p_m).collect()) < 1e-9);
        assert!(rel_spread(series.iter().map(|p| p.p_d).collect()) < 1e-9);
        // τ₁ falls as ω₁ rises (Eq. 20: τ₁ ∝ 1/√ω₁) — the seller already
        // favored by weight can afford lower fidelity.
        assert!(monotone_decreasing(
            &series.iter().map(|p| p.tau1).collect::<Vec<_>>()
        ));
        // τ₂ moves only via the aggregate; far less than τ₁.
        let t1_spread = rel_spread(series.iter().map(|p| p.tau1).collect());
        let t2_spread = rel_spread(series.iter().map(|p| p.tau2).collect());
        assert!(
            t2_spread < t1_spread * 0.25,
            "t1 {t1_spread} vs t2 {t2_spread}"
        );
    }

    #[test]
    fn fig8_lambda1_tau_sinks_prices_rise() {
        // Paper Fig. 8: τ₁ sinks with λ₁; p^M and p^D rise a little; Ψ₁
        // falls; Ω stays ~flat.
        let series = sweep_lambda1(&market(5), 0.05, 0.95, 10).unwrap();
        assert!(monotone_decreasing(
            &series.iter().map(|p| p.tau1).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.p_m).collect::<Vec<_>>()
        ));
        assert!(monotone_increasing(
            &series.iter().map(|p| p.p_d).collect::<Vec<_>>()
        ));
        assert!(monotone_decreasing(
            &series.iter().map(|p| p.seller1).collect::<Vec<_>>()
        ));
        // Broker's profit varies far less than seller 1's.
        let spread = |xs: Vec<f64>| {
            let lo = xs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let hi = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            hi - lo
        };
        let br = spread(series.iter().map(|p| p.broker).collect());
        let s1 = spread(series.iter().map(|p| p.seller1).collect());
        assert!(br < s1, "broker spread {br} vs seller spread {s1}");
    }

    #[test]
    fn sweep_grid_endpoints_respected() {
        let series = sweep_theta1(&market(6), 0.2, 0.8, 4).unwrap();
        assert_eq!(series.len(), 4);
        assert!((series[0].x - 0.2).abs() < 1e-15);
        assert!((series[3].x - 0.8).abs() < 1e-15);
    }

    #[test]
    fn serde_roundtrip() {
        let series = sweep_rho2(&market(7), 100.0, 200.0, 3).unwrap();
        let js = serde_json::to_string(&series).unwrap();
        let back: Vec<InfluencePoint> = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), 3);
    }
}
