//! A from-scratch nonblocking event loop for the TCP server: a fixed pool
//! of reactor threads, each owning an OS readiness queue (epoll on Linux,
//! poll(2) elsewhere on unix) plus a wakeup pipe, serving every connection
//! assigned to it without spawning per-connection threads.
//!
//! ## How a request flows
//!
//! The accept thread round-robins each accepted socket to a reactor over
//! an injection queue and pokes that reactor's wakeup pipe. The reactor
//! registers the (nonblocking) socket and reads request lines as they
//! arrive ([`Conn`] does the incremental framing). Solve submissions go to
//! the engine with a [`RoutedSink`]: when a worker completes the job, the
//! reply is converted to a wire response, pushed onto the reactor's routed
//! queue tagged with the connection token, and the wakeup pipe is written —
//! the reactor wakes (if parked in `epoll_wait`), appends the response to
//! the right connection's write buffer and flushes it. No forwarder or
//! writer threads exist; the thread count is `reactors + workers +
//! supervisor + accept`, independent of connection count.
//!
//! Batches aggregate through a [`BatchSink`] the same way — slots fill as
//! sub-solves complete and the last one emits the combined response — so
//! the legacy per-batch collector thread is gone too.
//!
//! ## Why a pipe
//!
//! Workers must be able to interrupt a reactor parked in `epoll_wait`.
//! A byte written to the self-pipe makes its read end readable, which is
//! exactly an event the poller can wait on alongside the sockets. The
//! write never blocks: the pipe is nonblocking, and a full pipe already
//! guarantees a pending wakeup.

use crate::conn::{Conn, ConnBufs, ConnCtx};
use crate::engine::{Engine, Reply};
use crate::error::EngineError;
use crate::protocol::{ResponseBody, WireResponse};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use share_obs::metrics::Gauge;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tracing target of the reactor lifecycle events.
const TARGET: &str = "share_engine::reactor";

/// Poller token reserved for the wakeup pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// How long a reactor parks in the poller before re-checking the drain
/// flag (a pure backstop: wakeups arrive through the pipe).
const PARK_MS: i32 = 250;

/// How long a draining reactor waits for in-flight replies and pending
/// writes to flush before force-closing the stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Most recycled [`ConnBufs`] a reactor keeps pooled; closes beyond this
/// drop their buffers so an old connection spike doesn't pin memory.
const BUF_POOL_CAP: usize = 64;

/// One completed wire response routed back to the connection that owns the
/// token.
pub(crate) type Routed = (u64, WireResponse);

/// Raw syscall bindings. Kept deliberately tiny: a nonblocking self-pipe
/// (all unix) and the readiness queue (epoll on Linux/Android, poll(2) on
/// the other unixes).
mod sys {
    use std::io;
    use std::os::raw::c_int;

    extern "C" {
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const O_NONBLOCK: c_int = 0x0004;

    /// A nonblocking self-pipe: the read end parks in the poller, the
    /// write end is poked by whoever needs the reactor's attention.
    pub(super) struct WakePipe {
        read_fd: c_int,
        write_fd: c_int,
    }

    impl WakePipe {
        pub(super) fn new() -> io::Result<Self> {
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                    let err = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(err);
                }
            }
            Ok(Self {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub(super) fn read_fd(&self) -> c_int {
            self.read_fd
        }

        /// Write one byte; a full pipe means a wakeup is already pending,
        /// so every failure is ignorable.
        pub(super) fn notify(&self) {
            let byte = [1u8];
            let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
        }

        /// Drain all pending wakeup bytes. Returns `true` when at least
        /// one byte was read (i.e. this park was ended by a wakeup).
        pub(super) fn drain(&self) -> bool {
            let mut buf = [0u8; 64];
            let mut any = false;
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    // Nonblocking: a negative return here is EAGAIN (or a
                    // terminal error, equally a reason to stop draining).
                    break;
                }
                any = true;
                if (n as usize) < buf.len() {
                    break;
                }
            }
            any
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    // Both pipe ends are plain file descriptors, safe to use from any
    // thread; the byte stream carries no data, only "wake up".
    unsafe impl Send for WakePipe {}
    unsafe impl Sync for WakePipe {}

    /// One readiness report from the poller.
    pub(super) struct Event {
        pub(super) token: u64,
        pub(super) readable: bool,
        pub(super) writable: bool,
    }

    /// What a registered descriptor should be watched for.
    #[derive(Clone, Copy)]
    pub(super) struct Interest {
        pub(super) read: bool,
        pub(super) write: bool,
    }

    // ---- epoll backend (Linux) -----------------------------------------

    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub(super) use epoll::Poller;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    mod epoll {
        use super::{Event, Interest};
        use std::io;
        use std::os::raw::c_int;

        // Linux packs epoll_event on x86-64 (12 bytes); every other
        // architecture uses natural alignment (16 bytes).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        const EPOLL_CLOEXEC: c_int = 0o2000000;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest.read {
                m |= EPOLLIN;
            }
            if interest.write {
                m |= EPOLLOUT;
            }
            m
        }

        pub(in super::super) struct Poller {
            epfd: c_int,
            buf: Vec<EpollEvent>,
        }

        impl Poller {
            pub(in super::super) fn new() -> io::Result<Self> {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                let mut buf = Vec::new();
                buf.resize_with(256, || EpollEvent { events: 0, data: 0 });
                Ok(Self { epfd, buf })
            }

            fn ctl(&self, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
                let mut ev = EpollEvent { events, data };
                if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            pub(in super::super) fn add(
                &mut self,
                fd: c_int,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, mask(interest), token)
            }

            pub(in super::super) fn modify(
                &mut self,
                fd: c_int,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, mask(interest), token)
            }

            pub(in super::super) fn remove(&mut self, fd: c_int) {
                let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
            }

            /// Park until readiness, a wakeup, or `timeout_ms`. Readiness
            /// reports land in `events` (cleared first). Error/hangup
            /// conditions surface as readable+writable so the owning
            /// connection's next read/write observes the failure.
            pub(in super::super) fn wait(
                &mut self,
                events: &mut Vec<Event>,
                timeout_ms: i32,
            ) -> io::Result<()> {
                events.clear();
                let n = loop {
                    let n = unsafe {
                        epoll_wait(
                            self.epfd,
                            self.buf.as_mut_ptr(),
                            self.buf.len() as c_int,
                            timeout_ms,
                        )
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for entry in self.buf.iter().take(n) {
                    // Copy out of the (possibly packed) buffer entry.
                    let flags = entry.events;
                    let token = entry.data;
                    let broken = flags & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                    events.push(Event {
                        token,
                        readable: flags & EPOLLIN != 0 || broken,
                        writable: flags & EPOLLOUT != 0 || broken,
                    });
                }
                Ok(())
            }
        }

        impl Drop for Poller {
            fn drop(&mut self) {
                unsafe {
                    close(self.epfd);
                }
            }
        }
    }

    // ---- poll(2) backend (other unix) ----------------------------------

    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub(super) use fallback::Poller;

    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    mod fallback {
        use super::{Event, Interest};
        use std::collections::HashMap;
        use std::io;
        use std::os::raw::c_int;

        #[repr(C)]
        struct PollFd {
            fd: c_int,
            events: i16,
            revents: i16,
        }

        #[cfg(any(target_os = "macos", target_os = "ios"))]
        type Nfds = u32;
        #[cfg(not(any(target_os = "macos", target_os = "ios")))]
        type Nfds = u64;

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
        }

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;
        const POLLNVAL: i16 = 0x020;

        /// poll(2) rebuilds the descriptor array on every wait; fine for
        /// the non-Linux fallback.
        pub(in super::super) struct Poller {
            registered: HashMap<c_int, (u64, Interest)>,
        }

        impl Poller {
            pub(in super::super) fn new() -> io::Result<Self> {
                Ok(Self {
                    registered: HashMap::new(),
                })
            }

            pub(in super::super) fn add(
                &mut self,
                fd: c_int,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.registered.insert(fd, (token, interest));
                Ok(())
            }

            pub(in super::super) fn modify(
                &mut self,
                fd: c_int,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                self.registered.insert(fd, (token, interest));
                Ok(())
            }

            pub(in super::super) fn remove(&mut self, fd: c_int) {
                self.registered.remove(&fd);
            }

            pub(in super::super) fn wait(
                &mut self,
                events: &mut Vec<Event>,
                timeout_ms: i32,
            ) -> io::Result<()> {
                events.clear();
                let mut fds: Vec<PollFd> = self
                    .registered
                    .iter()
                    .map(|(&fd, &(_, interest))| {
                        let mut ev = 0i16;
                        if interest.read {
                            ev |= POLLIN;
                        }
                        if interest.write {
                            ev |= POLLOUT;
                        }
                        PollFd {
                            fd,
                            events: ev,
                            revents: 0,
                        }
                    })
                    .collect();
                let n = loop {
                    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
                    if n >= 0 {
                        break n;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n == 0 {
                    return Ok(());
                }
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let Some(&(token, _)) = self.registered.get(&pfd.fd) else {
                        continue;
                    };
                    let broken = pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    events.push(Event {
                        token,
                        readable: pfd.revents & POLLIN != 0 || broken,
                        writable: pfd.revents & POLLOUT != 0 || broken,
                    });
                }
                Ok(())
            }
        }
    }
}

/// Wakes one reactor from wherever it is parked. Cloned (via `Arc`) into
/// every in-flight reply sink, so the pipe outlives the reactor's own
/// shutdown and a late reply can never write a dangling descriptor.
pub(crate) struct Waker {
    pipe: sys::WakePipe,
}

impl Waker {
    fn new() -> io::Result<Self> {
        Ok(Self {
            pipe: sys::WakePipe::new()?,
        })
    }

    /// Poke the reactor.
    pub(crate) fn wake(&self) {
        self.pipe.notify();
    }

    fn read_fd(&self) -> RawFd {
        self.pipe.read_fd()
    }

    fn drain(&self) -> bool {
        self.pipe.drain()
    }
}

/// Routes one engine reply back onto the reactor connection identified by
/// `token`, then wakes the reactor so it flushes the response.
pub(crate) struct RoutedSink {
    pub(crate) token: u64,
    pub(crate) tx: Sender<Routed>,
    pub(crate) waker: Arc<Waker>,
}

impl RoutedSink {
    pub(crate) fn send(&self, reply: Reply) {
        let _ = self.tx.send((self.token, WireResponse::from_reply(reply)));
        self.waker.wake();
    }
}

/// Aggregates one NDJSON `batch` request without a collector thread: each
/// sub-request's reply fills its slot (sub-ids are positions, as on the
/// legacy path), and the final reply emits the combined response onto the
/// owning connection's routed queue.
pub(crate) struct BatchSink {
    token: u64,
    /// The outer request id the combined response answers.
    batch_id: u64,
    /// Wire-form trace of the batch request, echoed on the combined
    /// response (sub-replies keep their own per-item engine-hop traces).
    trace: Option<String>,
    slots: Mutex<Vec<Option<Reply>>>,
    remaining: AtomicUsize,
    tx: Sender<Routed>,
    waker: Arc<Waker>,
}

impl BatchSink {
    pub(crate) fn new(
        token: u64,
        batch_id: u64,
        len: usize,
        trace: Option<String>,
        tx: Sender<Routed>,
        waker: Arc<Waker>,
    ) -> Arc<Self> {
        Arc::new(Self {
            token,
            batch_id,
            trace,
            slots: Mutex::new(std::iter::repeat_with(|| None).take(len).collect()),
            remaining: AtomicUsize::new(len),
            tx,
            waker,
        })
    }

    pub(crate) fn send(&self, reply: Reply) {
        let slot_idx = reply.id as usize;
        let filled = {
            let mut slots = self.slots.lock();
            match slots.get_mut(slot_idx) {
                // The engine's exactly-one-reply contract makes a double
                // fill impossible; guard anyway so a violation cannot
                // underflow `remaining` and emit a half-empty batch.
                Some(slot) if slot.is_none() => {
                    *slot = Some(reply);
                    true
                }
                _ => false,
            }
        };
        if filled && self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let results: Vec<WireResponse> = self
                .slots
                .lock()
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    WireResponse::from_reply(slot.take().unwrap_or(Reply {
                        id: i as u64,
                        trace: None,
                        result: Err(EngineError::ShuttingDown),
                    }))
                })
                .collect();
            let _ = self.tx.send((
                self.token,
                WireResponse {
                    id: self.batch_id,
                    trace: self.trace.clone(),
                    body: ResponseBody::Batch { results },
                },
            ));
            self.waker.wake();
        }
    }
}

/// The accept thread's handle to one reactor.
struct ReactorHandle {
    inject_tx: Sender<TcpStream>,
    waker: Arc<Waker>,
}

/// A fixed pool of reactor threads serving every TCP connection.
pub(crate) struct ReactorPool {
    reactors: Vec<ReactorHandle>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    drain: Arc<AtomicBool>,
    next: AtomicUsize,
}

impl ReactorPool {
    /// Spawn `reactors` event-loop threads for the server at `local_addr`.
    pub(crate) fn start(
        engine: &Arc<Engine>,
        reactors: usize,
        local_addr: SocketAddr,
        stop: &Arc<AtomicBool>,
    ) -> io::Result<Self> {
        let reactors = reactors.max(1);
        let drain = Arc::new(AtomicBool::new(false));
        let mut pool = Vec::with_capacity(reactors);
        let mut handles = Vec::with_capacity(reactors);
        for idx in 0..reactors {
            let waker = Arc::new(Waker::new()?);
            let (inject_tx, inject_rx) = unbounded::<TcpStream>();
            let (routed_tx, routed_rx) = unbounded::<Routed>();
            let thread_engine = Arc::clone(engine);
            let thread_waker = Arc::clone(&waker);
            let thread_drain = Arc::clone(&drain);
            let thread_stop = Arc::clone(stop);
            let handle = thread::Builder::new()
                .name(format!("share-engine-reactor-{idx}"))
                .spawn(move || {
                    run_reactor(
                        idx,
                        &thread_engine,
                        &inject_rx,
                        routed_tx,
                        &routed_rx,
                        &thread_waker,
                        &thread_drain,
                        &thread_stop,
                        local_addr,
                    );
                })?;
            pool.push(ReactorHandle { inject_tx, waker });
            handles.push(handle);
        }
        share_obs::obs_info!(
            target: TARGET,
            "reactor_pool_started",
            "reactors" => reactors,
            "addr" => local_addr.to_string()
        );
        Ok(Self {
            reactors: pool,
            handles: Mutex::new(handles),
            drain,
            next: AtomicUsize::new(0),
        })
    }

    /// Hand one accepted connection to the next reactor (round-robin).
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.reactors.len();
        let handle = &self.reactors[idx];
        if handle.inject_tx.send(stream).is_ok() {
            handle.waker.wake();
        }
    }

    /// Drain and join every reactor: stop reading new requests, flush all
    /// in-flight replies and pending writes, close the connections, exit.
    /// Idempotent; safe to call from `stop()` and `Drop` both.
    pub(crate) fn shutdown(&self) {
        self.drain.store(true, Ordering::SeqCst);
        for r in &self.reactors {
            r.waker.wake();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One reactor thread: park on readiness, frame and dispatch request
/// lines, route completed replies onto their connections, flush.
#[allow(clippy::too_many_arguments)]
fn run_reactor(
    idx: usize,
    engine: &Arc<Engine>,
    inject_rx: &Receiver<TcpStream>,
    routed_tx: Sender<Routed>,
    routed_rx: &Receiver<Routed>,
    waker: &Arc<Waker>,
    drain: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
    local_addr: SocketAddr,
) {
    let mut poller = match sys::Poller::new() {
        Ok(p) => p,
        Err(e) => {
            share_obs::obs_warn!(
                target: TARGET,
                "reactor_poller_failed",
                "reactor" => idx,
                "error" => e.to_string()
            );
            return;
        }
    };
    if poller
        .add(
            waker.read_fd(),
            WAKE_TOKEN,
            sys::Interest {
                read: true,
                write: false,
            },
        )
        .is_err()
    {
        return;
    }
    let metrics = engine.metrics();
    let conns_gauge: Arc<Gauge> = metrics.reactor_connections_gauge(idx);
    let mut next_token: u64 = (idx as u64) << 48;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // Recycled read/write/scratch buffers from closed connections.
    let mut buf_pool: Vec<ConnBufs> = Vec::new();
    let mut events: Vec<sys::Event> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut drain_since: Option<Instant> = None;
    let ctx = ConnCtx {
        engine,
        routed_tx: &routed_tx,
        waker,
        stop,
        local_addr,
    };

    loop {
        if poller.wait(&mut events, PARK_MS).is_err() {
            // A transient poller failure: back off briefly rather than
            // spinning; the park timeout keeps the loop live either way.
            thread::sleep(Duration::from_millis(10));
        }

        touched.clear();
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                if waker.drain() {
                    metrics.inc_reactor_wakeups();
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.readable {
                conn.handle_readable(&ctx);
            }
            if ev.writable {
                conn.flush();
            }
            touched.push(ev.token);
        }

        // Adopt connections the accept thread handed over.
        while let Ok(stream) = inject_rx.try_recv() {
            let token = next_token;
            next_token += 1;
            let conn = Conn::new(stream, token, buf_pool.pop().unwrap_or_default());
            if poller
                .add(
                    conn.fd(),
                    token,
                    sys::Interest {
                        read: true,
                        write: false,
                    },
                )
                .is_err()
            {
                continue; // dropping the stream closes the socket
            }
            metrics.inc_connections_open();
            conns.insert(token, conn);
            // Level-triggered readiness: bytes that arrived before
            // registration surface on the next poller wait.
            touched.push(token);
        }

        // Route completed replies onto their connections.
        while let Ok((token, resp)) = routed_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.queue_response(&resp);
                conn.inflight = conn.inflight.saturating_sub(1);
                touched.push(token);
            }
            // A reply for a connection that already died is dropped, just
            // as the legacy forwarder dropped sends to a gone writer.
        }

        let draining = drain.load(Ordering::SeqCst);
        if draining && drain_since.is_none() {
            drain_since = Some(Instant::now());
            touched.extend(conns.keys().copied());
        }
        let drain_expired = draining && drain_since.is_some_and(|t| t.elapsed() > DRAIN_GRACE);
        if drain_expired {
            // Force-close must reach even connections with no readiness
            // events (e.g. a peer that stopped reading our writes).
            touched.extend(conns.keys().copied());
        }

        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if draining {
                // Stop reading; in-flight replies still flush below.
                conn.read_closed = true;
                if drain_expired {
                    conn.dead = true;
                }
            }
            conn.flush();
            if conn.can_close() {
                poller.remove(conn.fd());
                metrics.dec_connections_open();
                if let Some(closed) = conns.remove(&token) {
                    if buf_pool.len() < BUF_POOL_CAP {
                        buf_pool.push(closed.reclaim());
                    }
                }
            } else {
                let _ = poller.modify(
                    conn.fd(),
                    token,
                    sys::Interest {
                        read: !conn.read_closed,
                        write: conn.wants_write(),
                    },
                );
            }
        }
        conns_gauge.set(conns.len() as f64);

        if draining && conns.is_empty() && inject_rx.is_empty() {
            break;
        }
    }
    // Late hand-offs after the drain decision: close them.
    while let Ok(stream) = inject_rx.try_recv() {
        drop(stream);
    }
    conns_gauge.set(0.0);
    share_obs::obs_info!(target: TARGET, "reactor_stopped", "reactor" => idx);
}

/// Pool-unique token source sanity check (tokens are namespaced by
/// reactor index in the top 16 bits, so two reactors can never collide).
#[cfg(test)]
mod tests {
    #[test]
    fn token_namespaces_do_not_collide() {
        let r0_first: u64 = 0u64 << 48;
        let r1_first: u64 = 1u64 << 48;
        assert!(r1_first - r0_first > 1 << 40, "per-reactor token space");
        assert_ne!(super::WAKE_TOKEN, r0_first);
    }
}
