//! Error type for the serving engine.
//!
//! Engine errors are designed to cross the wire: every variant has a stable
//! machine-readable [`code`](EngineError::code) that clients can switch on
//! (`overloaded`, `deadline_expired`, ...) plus a human-readable message.

use std::fmt;

/// Errors produced while accepting, queueing or solving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The engine shed the request — the job queue is full or past its
    /// load-shedding watermark. The request was rejected rather than
    /// buffered unboundedly (backpressure); `retry_after_ms` hints when a
    /// retry is likely to be admitted.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline passed before a solution could be produced.
    DeadlineExpired,
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request itself is malformed (bad spec, invalid parameters).
    InvalidRequest(String),
    /// The solver failed on a well-formed request.
    Solver(String),
    /// The worker running this solve panicked. The request was *not*
    /// dropped — every attached waiter receives this reply — and the
    /// supervisor respawns the worker. Transient: safe to retry.
    WorkerPanic(String),
    /// A cluster router could not reach the engine node that owns this
    /// request's key. Transient: the health checker evicts the dead node,
    /// the ring reassigns its keyspace, and a retry lands on the new
    /// owner. `retry_after_ms` hints at the health-check cadence.
    NodeUnavailable {
        /// The unreachable node's address or id, for diagnostics.
        node: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A server-side failure outside the request itself (e.g. a snapshot
    /// write failed). Not transient: retrying the same operation is
    /// unlikely to succeed until an operator intervenes.
    Internal(String),
}

impl EngineError {
    /// Stable machine-readable error code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::Overloaded { .. } => "overloaded",
            EngineError::DeadlineExpired => "deadline_expired",
            EngineError::ShuttingDown => "shutting_down",
            EngineError::InvalidRequest(_) => "invalid_request",
            EngineError::Solver(_) => "solver_error",
            EngineError::WorkerPanic(_) => "worker_panic",
            EngineError::NodeUnavailable { .. } => "node_unavailable",
            EngineError::Internal(_) => "internal",
        }
    }

    /// `true` for errors a client may reasonably retry: the request itself
    /// was fine, the engine just couldn't serve it this time.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EngineError::Overloaded { .. }
                | EngineError::DeadlineExpired
                | EngineError::WorkerPanic(_)
                | EngineError::NodeUnavailable { .. }
        )
    }

    /// The `retry_after_ms` hint carried by [`EngineError::Overloaded`]
    /// and [`EngineError::NodeUnavailable`].
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            EngineError::Overloaded { retry_after_ms }
            | EngineError::NodeUnavailable { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded { retry_after_ms } => write!(
                f,
                "engine overloaded, request shed (retry after {retry_after_ms}ms)"
            ),
            EngineError::DeadlineExpired => write!(f, "deadline expired before completion"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            EngineError::Solver(reason) => write!(f, "solver failure: {reason}"),
            EngineError::WorkerPanic(reason) => write!(f, "worker panicked mid-solve: {reason}"),
            EngineError::NodeUnavailable {
                node,
                retry_after_ms,
            } => write!(
                f,
                "owning node {node} unavailable (retry after {retry_after_ms}ms)"
            ),
            EngineError::Internal(reason) => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            EngineError::Overloaded { retry_after_ms: 25 },
            EngineError::DeadlineExpired,
            EngineError::ShuttingDown,
            EngineError::InvalidRequest("x".into()),
            EngineError::Solver("y".into()),
            EngineError::WorkerPanic("z".into()),
            EngineError::NodeUnavailable {
                node: "n1".into(),
                retry_after_ms: 100,
            },
            EngineError::Internal("w".into()),
        ];
        let codes: Vec<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "overloaded",
                "deadline_expired",
                "shutting_down",
                "invalid_request",
                "solver_error",
                "worker_panic",
                "node_unavailable",
                "internal"
            ]
        );
    }

    #[test]
    fn transient_classification_and_retry_hint() {
        assert!(EngineError::Overloaded { retry_after_ms: 50 }.is_transient());
        assert!(EngineError::WorkerPanic("boom".into()).is_transient());
        assert!(EngineError::DeadlineExpired.is_transient());
        assert!(!EngineError::InvalidRequest("bad".into()).is_transient());
        assert!(!EngineError::Solver("nan".into()).is_transient());
        assert!(!EngineError::ShuttingDown.is_transient());
        let unavailable = EngineError::NodeUnavailable {
            node: "127.0.0.1:7901".into(),
            retry_after_ms: 150,
        };
        assert!(unavailable.is_transient());
        assert_eq!(unavailable.retry_after_ms(), Some(150));
        assert!(!EngineError::Internal("disk full".into()).is_transient());
        assert_eq!(
            EngineError::Overloaded { retry_after_ms: 50 }.retry_after_ms(),
            Some(50)
        );
        assert_eq!(EngineError::DeadlineExpired.retry_after_ms(), None);
    }

    #[test]
    fn display_includes_reason() {
        let e = EngineError::InvalidRequest("m must be positive".into());
        assert!(e.to_string().contains("m must be positive"));
    }
}
