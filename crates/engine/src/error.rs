//! Error type for the serving engine.
//!
//! Engine errors are designed to cross the wire: every variant has a stable
//! machine-readable [`code`](EngineError::code) that clients can switch on
//! (`overloaded`, `deadline_expired`, ...) plus a human-readable message.

use std::fmt;

/// Errors produced while accepting, queueing or solving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The bounded job queue is full; the request was rejected rather than
    /// buffered unboundedly (backpressure).
    Overloaded,
    /// The request's deadline passed before a solution could be produced.
    DeadlineExpired,
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request itself is malformed (bad spec, invalid parameters).
    InvalidRequest(String),
    /// The solver failed on a well-formed request.
    Solver(String),
}

impl EngineError {
    /// Stable machine-readable error code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::Overloaded => "overloaded",
            EngineError::DeadlineExpired => "deadline_expired",
            EngineError::ShuttingDown => "shutting_down",
            EngineError::InvalidRequest(_) => "invalid_request",
            EngineError::Solver(_) => "solver_error",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded => write!(f, "job queue full, request rejected"),
            EngineError::DeadlineExpired => write!(f, "deadline expired before completion"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            EngineError::Solver(reason) => write!(f, "solver failure: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            EngineError::Overloaded,
            EngineError::DeadlineExpired,
            EngineError::ShuttingDown,
            EngineError::InvalidRequest("x".into()),
            EngineError::Solver("y".into()),
        ];
        let codes: Vec<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "overloaded",
                "deadline_expired",
                "shutting_down",
                "invalid_request",
                "solver_error"
            ]
        );
    }

    #[test]
    fn display_includes_reason() {
        let e = EngineError::InvalidRequest("m must be positive".into());
        assert!(e.to_string().contains("m must be positive"));
    }
}
