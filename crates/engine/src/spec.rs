//! Request specifications: what a client asks the engine to solve.
//!
//! A [`SolveSpec`] names a market ([`MarketSpec`]), the solver path
//! ([`SolveMode`]) and an optional deadline. Markets come in two wire forms:
//!
//! - **seeded** — `{"m": 100, "seed": 42}`: the paper's §6.1 default market
//!   generated deterministically from a seed (cheap to transmit, and two
//!   requests with the same seed are byte-identical — ideal for caching);
//! - **explicit** — a full [`MarketParams`] JSON object, as emitted by
//!   `share_cli params`.

use crate::error::EngineError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use share_market::params::MarketParams;

/// Which solver path to run (see `share_market::solver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum SolveMode {
    /// Backward induction through the closed forms (Eqs. 27/25/20).
    #[default]
    Direct,
    /// Closed-form Stage 1/2 with the Stage-3 mean-field reaction (Eq. 23).
    MeanField,
    /// Nested numerical maximization along the reaction curves.
    Numeric,
}

impl SolveMode {
    /// Stable snake_case name, matching the wire form and the `mode` label
    /// of the `share_solve_latency_seconds` metric.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveMode::Direct => "direct",
            SolveMode::MeanField => "mean_field",
            SolveMode::Numeric => "numeric",
        }
    }
}

/// The market a request refers to, in either wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum MarketSpec {
    /// A deterministic §6.1 default market: `m` sellers with `λ ~ U(0,1)`
    /// drawn from `seed`, optionally overriding the buyer's demand `N` and
    /// target performance `v`.
    Seeded {
        /// Seller count `m`.
        m: usize,
        /// RNG seed for the λ draws.
        seed: u64,
        /// Override for the buyer's demanded pieces `N`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        n_pieces: Option<usize>,
        /// Override for the required product performance `v`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        v: Option<f64>,
    },
    /// A fully explicit market configuration.
    Explicit(Box<MarketParams>),
}

/// Largest seller count a wire request may ask for. Materializing a seeded
/// market allocates `O(m)` state *before* validation, so an absurd `m`
/// from an untrusted line would OOM the server; 1e6 sellers is two orders
/// of magnitude past the paper's largest experiment.
pub const MAX_WIRE_SELLERS: usize = 1_000_000;

/// Largest `n_pieces` override a wire request may ask for (the solver's
/// piecewise loop is `O(n_pieces)` per evaluation).
pub const MAX_WIRE_PIECES: usize = 10_000_000;

impl MarketSpec {
    /// Build (and validate) the concrete [`MarketParams`] this spec denotes.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] when the spec is out of domain.
    pub fn materialize(&self) -> crate::error::Result<MarketParams> {
        let mut params = MarketParams::empty();
        self.materialize_into(&mut params)?;
        Ok(params)
    }

    /// [`materialize`](Self::materialize) writing into a caller-owned
    /// `MarketParams`, reusing its seller and weight allocations — the
    /// reactor's inline cache probe runs this once per request, so the
    /// steady state must not allocate. Identical validation order and RNG
    /// draws as `materialize`; on error `dst` holds unspecified (but safe)
    /// leftovers and must be re-filled before use.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] when the spec is out of domain.
    pub fn materialize_into(&self, dst: &mut MarketParams) -> crate::error::Result<()> {
        match self {
            MarketSpec::Seeded {
                m,
                seed,
                n_pieces,
                v,
            } => {
                if *m == 0 {
                    return Err(EngineError::InvalidRequest(
                        "seeded spec needs m > 0".to_string(),
                    ));
                }
                if *m > MAX_WIRE_SELLERS {
                    return Err(EngineError::InvalidRequest(format!(
                        "seeded spec m={m} exceeds the serving cap of {MAX_WIRE_SELLERS}"
                    )));
                }
                if n_pieces.is_some_and(|n| n > MAX_WIRE_PIECES) {
                    return Err(EngineError::InvalidRequest(format!(
                        "n_pieces override exceeds the serving cap of {MAX_WIRE_PIECES}"
                    )));
                }
                if v.is_some_and(|v| !v.is_finite()) {
                    return Err(EngineError::InvalidRequest(
                        "v override must be finite".to_string(),
                    ));
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                MarketParams::paper_defaults_into(*m, &mut rng, dst);
                if let Some(n) = n_pieces {
                    dst.buyer.n_pieces = *n;
                }
                if let Some(v) = v {
                    dst.buyer.v = *v;
                }
            }
            MarketSpec::Explicit(params) => {
                dst.buyer = params.buyer;
                dst.broker = params.broker;
                // Vec::clone_from reuses the destination's allocation.
                dst.sellers.clone_from(&params.sellers);
                dst.weights.clone_from(&params.weights);
                dst.loss_model = params.loss_model;
            }
        }
        dst.validate()
            .map_err(|e| EngineError::InvalidRequest(e.to_string()))?;
        Ok(())
    }
}

/// One complete solve request: market, solver path, optional deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveSpec {
    /// The market to solve.
    pub spec: MarketSpec,
    /// The solver path to use.
    #[serde(default)]
    pub mode: SolveMode,
    /// Deadline in milliseconds from submission; a request still unserved
    /// when it expires receives a `deadline_expired` error instead of an
    /// answer.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

impl SolveSpec {
    /// A seeded default-market request with no deadline.
    pub fn seeded(m: usize, seed: u64, mode: SolveMode) -> Self {
        Self {
            spec: MarketSpec::Seeded {
                m,
                seed,
                n_pieces: None,
                v: None,
            },
            mode,
            deadline_ms: None,
        }
    }

    /// An explicit-parameters request with no deadline.
    pub fn explicit(params: MarketParams, mode: SolveMode) -> Self {
        Self {
            spec: MarketSpec::Explicit(Box::new(params)),
            mode,
            deadline_ms: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_spec_is_deterministic() {
        let s = SolveSpec::seeded(5, 7, SolveMode::Direct);
        let a = s.spec.materialize().unwrap();
        let b = s.spec.materialize().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.m(), 5);
    }

    #[test]
    fn materialize_into_matches_materialize_and_reuses_buffers() {
        let big = SolveSpec::seeded(50, 3, SolveMode::Direct);
        let small = SolveSpec::seeded(4, 9, SolveMode::Direct);
        let mut scratch = MarketParams::empty();
        big.spec.materialize_into(&mut scratch).unwrap();
        assert_eq!(scratch, big.spec.materialize().unwrap());
        // Shrinking reuse must not leak sellers or weights from the big fill.
        small.spec.materialize_into(&mut scratch).unwrap();
        assert_eq!(scratch, small.spec.materialize().unwrap());

        let explicit = SolveSpec::explicit(small.spec.materialize().unwrap(), SolveMode::Direct);
        explicit.spec.materialize_into(&mut scratch).unwrap();
        assert_eq!(scratch, explicit.spec.materialize().unwrap());
    }

    #[test]
    fn seeded_spec_applies_overrides() {
        let spec = MarketSpec::Seeded {
            m: 3,
            seed: 1,
            n_pieces: Some(250),
            v: Some(0.9),
        };
        let p = spec.materialize().unwrap();
        assert_eq!(p.buyer.n_pieces, 250);
        assert_eq!(p.buyer.v, 0.9);
    }

    #[test]
    fn absurd_wire_sizes_are_rejected_before_allocation() {
        let huge_m = MarketSpec::Seeded {
            m: usize::MAX,
            seed: 1,
            n_pieces: None,
            v: None,
        };
        assert!(matches!(
            huge_m.materialize(),
            Err(EngineError::InvalidRequest(_))
        ));
        let huge_n = MarketSpec::Seeded {
            m: 3,
            seed: 1,
            n_pieces: Some(usize::MAX),
            v: None,
        };
        assert!(matches!(
            huge_n.materialize(),
            Err(EngineError::InvalidRequest(_))
        ));
        let nan_v = MarketSpec::Seeded {
            m: 3,
            seed: 1,
            n_pieces: None,
            v: Some(f64::NAN),
        };
        assert!(matches!(
            nan_v.materialize(),
            Err(EngineError::InvalidRequest(_))
        ));
    }

    #[test]
    fn zero_sellers_is_invalid() {
        let spec = MarketSpec::Seeded {
            m: 0,
            seed: 1,
            n_pieces: None,
            v: None,
        };
        assert!(matches!(
            spec.materialize(),
            Err(EngineError::InvalidRequest(_))
        ));
    }

    #[test]
    fn untagged_wire_forms_deserialize() {
        let seeded: MarketSpec = serde_json::from_str(r#"{"m": 4, "seed": 9}"#).unwrap();
        assert!(matches!(seeded, MarketSpec::Seeded { m: 4, seed: 9, .. }));

        let mut rng = StdRng::seed_from_u64(2);
        let params = MarketParams::paper_defaults(3, &mut rng);
        let js = serde_json::to_string(&MarketSpec::Explicit(Box::new(params))).unwrap();
        let back: MarketSpec = serde_json::from_str(&js).unwrap();
        assert!(matches!(back, MarketSpec::Explicit(_)));
        assert_eq!(back.materialize().unwrap().m(), 3);
    }

    #[test]
    fn solve_spec_defaults_on_the_wire() {
        let s: SolveSpec = serde_json::from_str(r#"{"spec": {"m": 2, "seed": 0}}"#).unwrap();
        assert_eq!(s.mode, SolveMode::Direct);
        assert_eq!(s.deadline_ms, None);
        let s: SolveSpec =
            serde_json::from_str(r#"{"spec": {"m": 2, "seed": 0}, "mode": "mean_field"}"#).unwrap();
        assert_eq!(s.mode, SolveMode::MeanField);
    }
}
