//! Per-connection state for the event-loop TCP server: nonblocking
//! read/write buffers with incremental NDJSON line framing.
//!
//! A [`Conn`] owns one nonblocking socket. Bytes read off the wire
//! accumulate in a read buffer until a full line is framed; each complete
//! line is dispatched with exactly the semantics of the legacy
//! thread-per-connection loop in [`server`](crate::server): lines are
//! trimmed, empty lines are skipped, the connection-drop fault site is
//! rolled once per request line, malformed requests are answered with an
//! `id: 0` error, and a `shutdown` request is acknowledged before the rest
//! of the stream is discarded. Responses — whether produced inline
//! (stats/metrics/ping/errors) or routed back from the worker pool — are
//! appended to a write buffer that the reactor flushes whenever the socket
//! accepts bytes, so a slow-reading peer never blocks the reactor thread.

use crate::engine::{Engine, HitScratch, ReplySink};
use crate::protocol::{
    encode_response_into, local_trace_response, parse_request_hot, RequestBody, ResponseBody,
    WireResponse,
};
use crate::reactor::{BatchSink, Routed, RoutedSink, Waker};
use crate::spec::SolveSpec;
use crossbeam::channel::Sender;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tracing target of the event-loop connection events (shared with the
/// legacy loop so the chaos suite's log assertions hold on both paths).
const TARGET: &str = "share_engine::server";

/// Everything a connection needs to dispatch one request line: the engine,
/// the reactor's reply-routing channel and waker, and the server stop flag
/// a `shutdown` request must raise.
pub(crate) struct ConnCtx<'a> {
    /// The shared engine.
    pub(crate) engine: &'a Arc<Engine>,
    /// Completed replies are routed here, tagged with the connection token.
    pub(crate) routed_tx: &'a Sender<Routed>,
    /// Wakes the owning reactor when a routed reply lands.
    pub(crate) waker: &'a Arc<Waker>,
    /// The accept loop's stop flag; a `shutdown` request raises it.
    pub(crate) stop: &'a Arc<AtomicBool>,
    /// The listener's own address, used to wake the blocking accept loop.
    pub(crate) local_addr: SocketAddr,
}

/// Pooled per-connection buffers: the read/write byte buffers plus the
/// inline cache-probe scratch. Reactors recycle these across connections
/// (see the pool in `run_reactor`), so a churn of short-lived clients
/// serves from already-grown buffers instead of re-allocating per accept.
#[derive(Default)]
pub(crate) struct ConnBufs {
    pub(crate) read_buf: Vec<u8>,
    pub(crate) write_buf: Vec<u8>,
    pub(crate) scratch: HitScratch,
}

/// One nonblocking NDJSON connection owned by a reactor thread.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Reactor-pool-unique token; routed replies carry it back.
    pub(crate) token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Reused market/key buffers for the inline cache probe.
    scratch: HitScratch,
    /// How much of `write_buf` has already been written to the socket.
    write_pos: usize,
    /// Replies still owed by the engine (solve submissions + batches).
    pub(crate) inflight: usize,
    /// The read side is done: EOF, read error, an injected connection
    /// drop, or a `shutdown` request. In-flight replies still flush.
    pub(crate) read_closed: bool,
    /// The connection failed hard (write error); close it immediately.
    pub(crate) dead: bool,
}

/// First position of `needle` in `haystack`.
fn find_byte(needle: u8, haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, token: u64, bufs: ConnBufs) -> Self {
        Self {
            stream,
            token,
            read_buf: bufs.read_buf,
            write_buf: bufs.write_buf,
            scratch: bufs.scratch,
            write_pos: 0,
            inflight: 0,
            read_closed: false,
            dead: false,
        }
    }

    /// Tear the connection down (dropping the stream closes the socket)
    /// and hand its buffers back for the reactor's pool, cleared but with
    /// capacity kept.
    pub(crate) fn reclaim(self) -> ConnBufs {
        let Conn {
            mut read_buf,
            mut write_buf,
            scratch,
            ..
        } = self;
        read_buf.clear();
        write_buf.clear();
        ConnBufs {
            read_buf,
            write_buf,
            scratch,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Bytes queued but not yet accepted by the socket.
    pub(crate) fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// A connection can be reaped once its read side is done, every
    /// submitted request has been answered, and the answers are flushed.
    pub(crate) fn can_close(&self) -> bool {
        self.dead || (self.read_closed && self.inflight == 0 && !self.wants_write())
    }

    /// Serialize one response directly into the write buffer (newline
    /// included) — no intermediate `String` per response.
    pub(crate) fn queue_response(&mut self, resp: &WireResponse) {
        encode_response_into(resp, &mut self.write_buf);
    }

    /// Write as much of the buffered output as the socket accepts. A hard
    /// write error marks the connection dead (the legacy writer thread
    /// likewise stopped on its first failed write).
    pub(crate) fn flush(&mut self) {
        while self.wants_write() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if !self.wants_write() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > 4096 {
            // Compact so a long-lived slow reader doesn't pin memory.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }

    /// Drain the socket until it would block, framing and dispatching every
    /// complete NDJSON line as it arrives.
    pub(crate) fn handle_readable(&mut self, ctx: &ConnCtx<'_>) {
        let mut scratch = [0u8; 8192];
        loop {
            if self.read_closed || self.dead {
                return;
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    // EOF delivers a trailing unterminated line, exactly
                    // like `BufRead::lines` on the legacy path.
                    if !self.read_buf.is_empty() {
                        let mut tail = std::mem::take(&mut self.read_buf);
                        self.dispatch_raw_line(&tail, ctx);
                        tail.clear();
                        self.read_buf = tail;
                    }
                    return;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.process_buffered_lines(ctx);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Read error: stop reading but flush in-flight replies,
                    // as the legacy loop did when `lines()` failed.
                    self.read_closed = true;
                    return;
                }
            }
        }
    }

    /// Frame and dispatch every complete line currently buffered. Lines
    /// are dispatched in place, borrowed straight from the read buffer —
    /// no per-line copy. (The buffer is moved out for the duration so the
    /// borrow checker can see `dispatch_raw_line` never touches it; the
    /// move itself is pointer-sized, not a copy.)
    fn process_buffered_lines(&mut self, ctx: &ConnCtx<'_>) {
        let mut buf = std::mem::take(&mut self.read_buf);
        let mut consumed = 0;
        while !self.read_closed && !self.dead {
            let Some(nl) = find_byte(b'\n', &buf[consumed..]) else {
                break;
            };
            let end = consumed + nl;
            // `BufRead::lines` strips a trailing CR along with the LF.
            let line_end = if end > consumed && buf[end - 1] == b'\r' {
                end - 1
            } else {
                end
            };
            self.dispatch_raw_line(&buf[consumed..line_end], ctx);
            consumed = end + 1;
        }
        buf.drain(..consumed);
        self.read_buf = buf;
    }

    /// Process one framed request line with the legacy loop's semantics.
    fn dispatch_raw_line(&mut self, raw: &[u8], ctx: &ConnCtx<'_>) {
        let Ok(text) = std::str::from_utf8(raw) else {
            // The legacy reader's `lines()` iterator failed on invalid
            // UTF-8 and stopped serving the connection.
            self.read_closed = true;
            return;
        };
        let line = text.trim();
        if line.is_empty() {
            return;
        }
        // Fault plan: drop the connection after reading a request, without
        // replying to it. Replies already in flight still flush before the
        // connection closes; the rest of the input stream is discarded.
        if ctx.engine.should_drop_connection() {
            share_obs::obs_debug!(target: TARGET, "injected_conn_drop", "id" => 0_u64);
            self.read_closed = true;
            return;
        }
        match parse_request_hot(line) {
            Err(e) => {
                ctx.engine.note_invalid();
                self.queue_response(&WireResponse::from_error(0, &e));
            }
            Ok(req) => match req.body {
                RequestBody::Solve {
                    spec,
                    mode,
                    deadline_ms,
                } => {
                    let solve = SolveSpec {
                        spec,
                        mode,
                        deadline_ms,
                    };
                    let trace = req
                        .trace
                        .as_deref()
                        .and_then(share_obs::TraceContext::from_wire);
                    // Warm fast path: answer untraced solves straight from
                    // the equilibrium cache on the reactor thread — no
                    // queue hop, no allocation. Traced requests keep the
                    // full path so their engine-hop spans exist; misses
                    // fall through to the submission path, which repeats
                    // the probe with full accounting.
                    if trace.is_none() {
                        if let Some(result) =
                            ctx.engine.try_cache_hit(req.id, &solve, &mut self.scratch)
                        {
                            self.queue_response(&WireResponse {
                                id: req.id,
                                trace: None,
                                body: ResponseBody::Solve { result },
                            });
                            return;
                        }
                    }
                    self.inflight += 1;
                    ctx.engine.submit_sink_traced(
                        req.id,
                        &solve,
                        ReplySink::Routed(RoutedSink {
                            token: self.token,
                            tx: ctx.routed_tx.clone(),
                            waker: Arc::clone(ctx.waker),
                        }),
                        trace,
                    );
                }
                RequestBody::Batch { requests } => {
                    if requests.is_empty() {
                        self.queue_response(&WireResponse {
                            id: req.id,
                            trace: req.trace.clone(),
                            body: ResponseBody::Batch {
                                results: Vec::new(),
                            },
                        });
                    } else {
                        // Fan the batch across the worker pool without a
                        // collector thread: the sink fills slots as replies
                        // complete and emits the aggregate response when
                        // the last one lands. Sub-request ids are their
                        // positions, as on the legacy path.
                        let trace = req
                            .trace
                            .as_deref()
                            .and_then(share_obs::TraceContext::from_wire);
                        self.inflight += 1;
                        let sink = BatchSink::new(
                            self.token,
                            req.id,
                            requests.len(),
                            req.trace.clone(),
                            ctx.routed_tx.clone(),
                            Arc::clone(ctx.waker),
                        );
                        for (i, spec) in requests.iter().enumerate() {
                            ctx.engine.submit_sink_traced(
                                i as u64,
                                spec,
                                ReplySink::Batch(Arc::clone(&sink)),
                                trace,
                            );
                        }
                    }
                }
                RequestBody::Stats => {
                    self.queue_response(&WireResponse {
                        id: req.id,
                        trace: req.trace.clone(),
                        body: ResponseBody::Stats {
                            stats: ctx.engine.stats(),
                        },
                    });
                }
                RequestBody::Metrics => {
                    self.queue_response(&WireResponse {
                        id: req.id,
                        trace: req.trace.clone(),
                        body: ResponseBody::Metrics {
                            text: ctx.engine.render_prometheus(),
                        },
                    });
                }
                RequestBody::Ping => {
                    self.queue_response(&WireResponse {
                        id: req.id,
                        trace: req.trace.clone(),
                        body: ResponseBody::Pong,
                    });
                }
                RequestBody::NodeInfo => {
                    self.queue_response(&WireResponse {
                        id: req.id,
                        trace: req.trace.clone(),
                        body: ResponseBody::NodeInfo {
                            info: ctx.engine.node_info(),
                        },
                    });
                }
                RequestBody::Trace { trace_id, slowest } => {
                    self.queue_response(&local_trace_response(
                        req.id,
                        trace_id.as_deref(),
                        slowest,
                    ));
                }
                RequestBody::Snapshot => {
                    // The write runs inline on the reactor thread: snapshot
                    // requests are rare operator actions and the cache is
                    // bounded, so the stall is acceptable.
                    let resp = match ctx.engine.write_snapshot() {
                        Ok(entries) => WireResponse {
                            id: req.id,
                            trace: req.trace.clone(),
                            body: ResponseBody::Snapshot { entries },
                        },
                        Err(e) => WireResponse::from_error(
                            req.id,
                            &crate::error::EngineError::Internal(e.to_string()),
                        ),
                    };
                    self.queue_response(&resp);
                }
                RequestBody::Shutdown => {
                    self.queue_response(&WireResponse {
                        id: req.id,
                        trace: req.trace.clone(),
                        body: ResponseBody::Shutdown,
                    });
                    self.read_closed = true;
                    if !ctx.stop.swap(true, Ordering::SeqCst) {
                        // Wake the blocking accept loop so it observes the
                        // stop flag (same trick as the legacy path).
                        let _ = TcpStream::connect(ctx.local_addr);
                    }
                }
            },
        }
    }
}
