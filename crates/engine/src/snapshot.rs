//! Warm-cache snapshot format: serialize the equilibrium cache to disk on
//! drain, reload it on start, so a respawned node doesn't begin cold.
//!
//! The format is versioned NDJSON-in-a-file: a one-line JSON header
//! followed by one `{key, value}` line per cache entry, least-recently-
//! used first (so restoring in file order reproduces LRU order; see
//! [`ShardedCache::export`](crate::cache::ShardedCache::export)). Writes
//! go through a `.tmp` sibling and an atomic rename, so a crash mid-write
//! leaves the previous snapshot intact rather than a truncated one.
//!
//! Version mismatches and per-entry parse failures are non-fatal: a node
//! restarting across an upgrade starts cold instead of refusing to start.

use crate::engine::SolveSummary;
use crate::quantize::CacheKey;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Tracing target for snapshot lifecycle events.
const TARGET: &str = "share_engine::snapshot";

/// Current snapshot format version. Bump on any incompatible change to
/// [`CacheKey`] or [`SolveSummary`] serialization.
pub const SNAPSHOT_VERSION: u32 = 1;

/// First line of every snapshot file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Header {
    version: u32,
    entries: usize,
}

/// One cache entry on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Line {
    key: CacheKey,
    value: SolveSummary,
}

/// Write `entries` to `path` (header + one line per entry) via a temp file
/// and atomic rename. Returns the number of entries written.
///
/// # Errors
/// Any I/O failure creating, writing or renaming the file.
pub fn write_snapshot(path: &Path, entries: &[(CacheKey, SolveSummary)]) -> io::Result<usize> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let file = fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        let header = Header {
            version: SNAPSHOT_VERSION,
            entries: entries.len(),
        };
        serde_json::to_writer(&mut w, &header).map_err(io::Error::other)?;
        w.write_all(b"\n")?;
        for (key, value) in entries {
            let line = Line {
                key: key.clone(),
                value: value.clone(),
            };
            serde_json::to_writer(&mut w, &line).map_err(io::Error::other)?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
    }
    fs::rename(&tmp, path)?;
    share_obs::obs_info!(
        target: TARGET,
        "snapshot_written",
        "path" => path.display().to_string(),
        "entries" => entries.len()
    );
    Ok(entries.len())
}

/// Read a snapshot from `path`. A missing file yields an empty vector (a
/// first boot is not an error); so do a version mismatch and individually
/// corrupt entry lines — the node starts (partially) cold and says so in
/// the structured log.
///
/// # Errors
/// I/O failures other than `NotFound`.
pub fn read_snapshot(path: &Path) -> io::Result<Vec<(CacheKey, SolveSummary)>> {
    let file = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut lines = BufReader::new(file).lines();
    let header: Header = match lines.next() {
        Some(Ok(first)) => match serde_json::from_str(&first) {
            Ok(h) => h,
            Err(_) => {
                share_obs::obs_warn!(
                    target: TARGET,
                    "snapshot_header_unreadable",
                    "path" => path.display().to_string()
                );
                return Ok(Vec::new());
            }
        },
        _ => return Ok(Vec::new()),
    };
    if header.version != SNAPSHOT_VERSION {
        share_obs::obs_warn!(
            target: TARGET,
            "snapshot_version_mismatch",
            "path" => path.display().to_string(),
            "found" => header.version,
            "expected" => SNAPSHOT_VERSION
        );
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(header.entries);
    let mut skipped = 0_usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Line>(&line) {
            Ok(l) => out.push((l.key, l.value)),
            Err(_) => skipped += 1,
        }
    }
    if skipped > 0 {
        share_obs::obs_warn!(
            target: TARGET,
            "snapshot_entries_skipped",
            "path" => path.display().to_string(),
            "skipped" => skipped
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::quantize;
    use crate::spec::{SolveMode, SolveSpec};

    fn sample_entries(n: usize) -> Vec<(CacheKey, SolveSummary)> {
        (0..n)
            .map(|i| {
                let spec = SolveSpec::seeded(5 + i, i as u64, SolveMode::Direct);
                let params = spec.spec.materialize().unwrap();
                let key = quantize(&params, spec.mode, 1e-6);
                let sol = share_market::solver::solve(&params).unwrap();
                (key, SolveSummary::from_solution(&sol, 42))
            })
            .collect()
    }

    #[test]
    fn round_trips_entries_in_order() {
        let dir = std::env::temp_dir().join(format!("share-snap-{}", std::process::id()));
        let path = dir.join("node.snap");
        let entries = sample_entries(4);
        assert_eq!(write_snapshot(&path, &entries).unwrap(), 4);
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.len(), 4);
        for ((k1, v1), (k2, v2)) in entries.iter().zip(&back) {
            assert_eq!(k1, k2);
            assert_eq!(v1.p_m, v2.p_m);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_not_error() {
        let path = Path::new("/nonexistent-share-snapshot-dir/na.snap");
        assert!(read_snapshot(path).unwrap().is_empty());
    }

    #[test]
    fn version_mismatch_and_garbage_start_cold() {
        let dir = std::env::temp_dir().join(format!("share-snap-v-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.snap");
        fs::write(&path, "{\"version\":999,\"entries\":1}\n{}\n").unwrap();
        assert!(read_snapshot(&path).unwrap().is_empty());
        fs::write(&path, "not json at all\n").unwrap();
        assert!(read_snapshot(&path).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("share-snap-c-{}", std::process::id()));
        let path = dir.join("partial.snap");
        let entries = sample_entries(3);
        write_snapshot(&path, &entries).unwrap();
        // Append a corrupt line; the three good entries must survive.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"garbage\"}\n");
        fs::write(&path, text).unwrap();
        assert_eq!(read_snapshot(&path).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
