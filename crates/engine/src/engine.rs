//! The serving engine: bounded job queue, worker pool, sharded equilibrium
//! cache and in-flight request deduplication.
//!
//! Life of a request (see [`Engine::submit`]):
//!
//! 1. the spec is materialized and validated, then quantized into a
//!    [`CacheKey`](crate::quantize::CacheKey);
//! 2. a cache hit answers immediately;
//! 3. a miss that matches an *in-flight* solve attaches to it (dedup) —
//!    the request costs nothing extra;
//! 4. otherwise the job enters the bounded queue — or is rejected with
//!    [`EngineError::Overloaded`] when the queue is full (backpressure).
//!
//! Workers drain the queue, honor per-request deadlines, publish solutions
//! to the cache and fan replies out to every attached waiter.

use crate::cache::ShardedCache;
use crate::error::{EngineError, Result};
use crate::fault::{FaultPlan, FaultSite, FaultState};
use crate::metrics::{Metrics, StatsSnapshot};
use crate::quantize::{quantize, quantize_into, CacheKey, QuantizerConfig};
use crate::spec::{SolveMode, SolveSpec};
use crate::supervisor::{spawn_worker, supervisor_loop, SupervisorMsg};
use crossbeam::channel::{bounded, unbounded, Sender, TrySendError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use share_market::params::MarketParams;
use share_market::solver::{SneSolution, SolveMethod};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tracing target of the submission-path lifecycle events.
const TARGET: &str = "share_engine::engine";

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Solver worker threads. `0` starts no workers — jobs queue but never
    /// run, which the test suite uses to exercise backpressure and dedup
    /// deterministically.
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it are rejected with
    /// [`EngineError::Overloaded`].
    pub queue_capacity: usize,
    /// Equilibrium cache capacity (entries), split across `cache_shards`.
    pub cache_capacity: usize,
    /// Independently locked cache shards. `1` restores the old
    /// single-mutex cache; more shards let concurrent submitters and
    /// workers hit the cache without serializing on one lock.
    pub cache_shards: usize,
    /// Cache-key quantization tolerances.
    pub quantizer: QuantizerConfig,
    /// Fault-tolerance knobs: worker restarts, load shedding, degradation.
    pub resilience: ResilienceConfig,
    /// Optional fault-injection plan for chaos tests and benches. `None`
    /// (the default) injects nothing.
    pub faults: Option<FaultPlan>,
    /// Warm-cache snapshot file. When set, the engine restores the cache
    /// from this path at start (a missing or stale file starts cold) and
    /// writes the cache back on graceful shutdown, so a respawned node
    /// serves its owned keyspace warm. `None` (the default) disables both.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Cluster identity of this engine process. When set, every sample of
    /// the Prometheus exposition is stamped with a `node="<id>"` label and
    /// the id is reported by the `node_info` wire request.
    pub node_id: Option<String>,
    /// Warm-start the numeric solver from cached neighboring equilibria:
    /// solved `(p^M*, p^D*)` pairs are indexed under a coarsened cache key
    /// (see [`crate::quantize::HINT_COARSENING`]) and later numeric solves
    /// for *nearby* markets search a narrow price bracket around the hint
    /// instead of the cold full bracket. Off by default; answers stay
    /// within the quantizer's `price_tol` either way (the warm path falls
    /// back to the cold bracket when a hint proves unusable).
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            quantizer: QuantizerConfig::default(),
            resilience: ResilienceConfig::default(),
            faults: None,
            snapshot_path: None,
            node_id: None,
            warm_start: false,
        }
    }
}

/// Fault-tolerance configuration. The defaults change nothing about the
/// engine's pre-existing behavior: shedding and proactive degradation are
/// off until a watermark is set, and only the (previously fatal) worker
/// panic and solver-error paths gain recovery.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// How many dead workers the supervisor will respawn before giving up
    /// and letting the pool shrink.
    pub restart_budget: usize,
    /// Load-shedding watermark: when the job queue is at least this deep,
    /// *new* work is rejected with [`EngineError::Overloaded`] before it
    /// is enqueued (dedup joins onto in-flight solves stay admitted —
    /// they cost nothing). `None` disables the gate; the bounded queue
    /// itself still backpressures when full.
    pub shed_queue_depth: Option<usize>,
    /// Base of the `retry_after_ms` hint on shed replies; scaled up with
    /// queue depth per worker.
    pub shed_retry_after_ms: u64,
    /// Fall back to `solve_mean_field` when the direct/numeric path
    /// reports a solver error (the reply is tagged with the Theorem 5.1
    /// error bound).
    pub degrade_on_error: bool,
    /// Proactively degrade direct/numeric solves to mean-field when the
    /// queue is at least this deep. `None` disables.
    pub degrade_queue_depth: Option<usize>,
    /// Proactively degrade direct/numeric solves that waited longer than
    /// this in the queue. `None` disables.
    pub degrade_queue_wait_ms: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            restart_budget: 1024,
            shed_queue_depth: None,
            shed_retry_after_ms: 25,
            degrade_on_error: true,
            degrade_queue_depth: None,
            degrade_queue_wait_ms: None,
        }
    }
}

/// Why a reply was served by the mean-field degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DegradeReason {
    /// The direct/numeric solver reported an error; mean-field answered.
    SolverError,
    /// The engine was under shed-level queue pressure.
    Shed,
    /// The job exceeded its queue-wait time budget.
    TimeBudget,
}

/// Fidelity tag on a degraded reply: why the mean-field path answered and
/// the Theorem 5.1 bound on the approximation error it introduces, so
/// callers can judge whether the degraded equilibrium is usable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeInfo {
    /// What pushed this request down the ladder.
    pub reason: DegradeReason,
    /// Theorem 5.1 lower bound on the mean-field fidelity error for this
    /// market's seller count (`-1/(6m²)`).
    pub bound_lower: f64,
    /// Theorem 5.1 upper bound (`1/m − 2/(3m²)`).
    pub bound_upper: f64,
}

/// Wire-friendly summary of one solved equilibrium.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveSummary {
    /// Seller count `m`.
    pub m: usize,
    /// Solver path that produced the solution.
    pub method: SolveMethod,
    /// Buyer's product price `p^M*`.
    pub p_m: f64,
    /// Broker's data price `p^D*`.
    pub p_d: f64,
    /// Total dataset quality `q^D*`.
    pub q_d: f64,
    /// Product quality `q^M*`.
    pub q_m: f64,
    /// Buyer profit Φ*.
    pub buyer_profit: f64,
    /// Broker profit Ω*.
    pub broker_profit: f64,
    /// Total seller profit `Σ_i Ψ_i*`.
    pub seller_profit_total: f64,
    /// Fidelity profile summary: smallest τ*.
    pub tau_min: f64,
    /// Fidelity profile summary: mean τ*.
    pub tau_mean: f64,
    /// Fidelity profile summary: largest τ*.
    pub tau_max: f64,
    /// Whether this reply was served from the equilibrium cache.
    pub cached: bool,
    /// Wall-clock of the underlying solver run, in microseconds.
    pub solve_micros: u64,
    /// Set when the degradation ladder answered with `solve_mean_field`
    /// instead of the requested solver path; carries the Theorem 5.1
    /// fidelity bound. Absent (and omitted on the wire) for full-fidelity
    /// replies. Degraded replies are never cached.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub degraded: Option<DegradeInfo>,
}

impl SolveSummary {
    /// Summarize a full [`SneSolution`].
    pub fn from_solution(sol: &SneSolution, solve_micros: u64) -> Self {
        let m = sol.tau.len().max(1);
        let tau_min = sol.tau.iter().cloned().fold(f64::INFINITY, f64::min);
        let tau_max = sol.tau.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            m: sol.tau.len(),
            method: sol.method,
            p_m: sol.p_m,
            p_d: sol.p_d,
            q_d: sol.q_d,
            q_m: sol.q_m,
            buyer_profit: sol.buyer_profit,
            broker_profit: sol.broker_profit,
            seller_profit_total: sol.seller_profits.iter().sum(),
            tau_min,
            tau_mean: sol.tau.iter().sum::<f64>() / m as f64,
            tau_max,
            cached: false,
            solve_micros,
            degraded: None,
        }
    }
}

/// Identity and cache occupancy of one engine process, served by the
/// `node_info` wire request. The cluster router and operators use it to
/// check which process answered and how warm it is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Configured node id, or `"unnamed"` when the engine runs outside a
    /// cluster.
    pub node_id: String,
    /// Entries currently resident in the equilibrium cache (all shards).
    pub cache_entries: usize,
    /// Shard count of the equilibrium cache.
    pub cache_shards: usize,
    /// Solver worker threads configured.
    pub workers: usize,
    /// Requests accepted since start.
    pub requests: u64,
    /// Configured snapshot path, if warm restarts are enabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub snapshot_path: Option<String>,
}

/// One reply to one submitted request.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The id the request was submitted under.
    pub id: u64,
    /// Wire-form trace context of the engine hop that served this request
    /// (echoed on the NDJSON response); `None` for untraced requests.
    pub trace: Option<String>,
    /// The outcome.
    pub result: Result<SolveSummary>,
}

/// Where a reply goes once the engine produces it. The public [`Engine::submit`]
/// path delivers over a channel; the event-loop TCP server instead routes
/// replies back onto the owning reactor connection (tagged with its token)
/// or into a batch aggregation sink — no forwarder thread either way.
pub(crate) enum ReplySink {
    /// Deliver on a crossbeam channel (in-process callers, stdio, legacy).
    Channel(Sender<Reply>),
    /// Route onto a reactor connection and wake its event loop.
    #[cfg(unix)]
    Routed(crate::reactor::RoutedSink),
    /// Fill one slot of an aggregating NDJSON batch.
    #[cfg(unix)]
    Batch(Arc<crate::reactor::BatchSink>),
}

impl ReplySink {
    /// Deliver one reply. Like the legacy channel send, delivery to a
    /// receiver that has gone away is silently dropped.
    pub(crate) fn send(&self, reply: Reply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            #[cfg(unix)]
            ReplySink::Routed(sink) => sink.send(reply),
            #[cfg(unix)]
            ReplySink::Batch(sink) => sink.send(reply),
        }
    }
}

/// A request waiting for a solve to finish.
pub(crate) struct Waiter {
    pub(crate) id: u64,
    pub(crate) deadline: Option<Instant>,
    pub(crate) enqueued: Instant,
    pub(crate) tx: ReplySink,
    /// Open engine-hop span for traced requests; finished (and run through
    /// the tail sampler) when the reply is delivered.
    pub(crate) trace: Option<share_obs::HopSpan>,
}

/// A queued unit of solver work.
pub(crate) struct Job {
    pub(crate) key: CacheKey,
    pub(crate) params: MarketParams,
    pub(crate) mode: SolveMode,
    /// When the job entered the queue; workers observe the queue wait.
    pub(crate) enqueued_at: Instant,
    /// Hop-root context of the first traced waiter; workers record their
    /// `queue_wait`/`solve` child spans under it.
    pub(crate) trace: Option<share_obs::TraceContext>,
}

/// State shared between the submission path and the workers.
pub(crate) struct Shared {
    pub(crate) config: EngineConfig,
    pub(crate) metrics: Metrics,
    pub(crate) cache: ShardedCache<CacheKey, SolveSummary>,
    /// Warm-start hint index: solved numeric equilibrium prices keyed by
    /// the *coarsened* quantization of their market, so nearby markets can
    /// seed each other's numeric solves. Only populated (and read) when
    /// [`EngineConfig::warm_start`] is on.
    pub(crate) hints: ShardedCache<CacheKey, share_market::solver::WarmStart>,
    pub(crate) inflight: Mutex<HashMap<CacheKey, Vec<Waiter>>>,
    pub(crate) job_tx: Mutex<Option<Sender<Job>>>,
    pub(crate) closed: AtomicBool,
    /// Live fault-injection state, present when a plan is configured.
    pub(crate) faults: Option<FaultState>,
}

impl Shared {
    /// Suggested client back-off for a shed reply: the configured base
    /// scaled by queue depth per worker, capped at ten seconds.
    pub(crate) fn retry_after_hint(&self) -> u64 {
        let depth = self.metrics.queue_depth() as u64;
        let workers = self.config.workers.max(1) as u64;
        (self.config.resilience.shed_retry_after_ms * (1 + depth / workers)).min(10_000)
    }

    /// Deliver a reply to one waiter, recording its service latency. For
    /// traced requests this also finishes the engine-hop span — the reply
    /// outcome (cache hit, degradation, error code) rides as annotations,
    /// the tail sampler decides whether the trace is kept, and the hop's
    /// wire context is echoed on the reply.
    pub(crate) fn reply(&self, waiter: &Waiter, result: Result<SolveSummary>) {
        self.metrics.record_latency(waiter.enqueued.elapsed());
        let trace = waiter.trace.as_ref().map(|hop| {
            let mut extra: Vec<(String, String)> = Vec::new();
            match &result {
                Ok(summary) => {
                    if summary.cached {
                        extra.push(("cache".to_string(), "hit".to_string()));
                    }
                    if let Some(d) = &summary.degraded {
                        let reason = match d.reason {
                            DegradeReason::SolverError => "solver_error",
                            DegradeReason::Shed => "shed",
                            DegradeReason::TimeBudget => "time_budget",
                        };
                        extra.push(("degraded".to_string(), reason.to_string()));
                    }
                }
                Err(e) => extra.push(("error".to_string(), e.code().to_string())),
            }
            hop.finish(extra);
            hop.ctx.to_wire()
        });
        waiter.tx.send(Reply {
            id: waiter.id,
            trace,
            result,
        });
    }

    /// Debug-build enforcement of the quantizer's soundness contract
    /// ([`QuantizerConfig::price_tol`]): a cache-served equilibrium must
    /// price the *requested* market within `price_tol` of a fresh solve.
    /// Release builds skip the extra solve; debug builds (tests, CI) fail
    /// loudly on any violation instead of silently serving a wrong price.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_verify_price_tol(
        &self,
        params: &MarketParams,
        mode: SolveMode,
        hit: &SolveSummary,
    ) {
        use share_market::solver::{solve, solve_mean_field, solve_numeric};
        let fresh = match mode {
            SolveMode::Direct => solve(params),
            SolveMode::MeanField => solve_mean_field(params),
            SolveMode::Numeric => solve_numeric(params),
        };
        // A market that no longer solves cannot violate a price bound.
        let Ok(sol) = fresh else { return };
        let tol = self.config.quantizer.price_tol;
        debug_assert!(
            (sol.p_m - hit.p_m).abs() < tol,
            "price_tol contract violated: cached p_m {} vs fresh {} (tol {tol})",
            hit.p_m,
            sol.p_m
        );
        debug_assert!(
            (sol.p_d - hit.p_d).abs() < tol,
            "price_tol contract violated: cached p_d {} vs fresh {} (tol {tol})",
            hit.p_d,
            sol.p_d
        );
    }
}

/// Reusable scratch for [`Engine::try_cache_hit`]: the materialized
/// market and the quantized cache key live across requests, so a warm
/// probe reuses their seller/weight/bucket allocations instead of
/// re-allocating per request. One per connection (or per probing thread).
pub struct HitScratch {
    params: MarketParams,
    key: CacheKey,
}

impl HitScratch {
    /// Fresh scratch; its buffers grow to the largest market probed and
    /// stay there.
    pub fn new() -> Self {
        Self {
            params: MarketParams::empty(),
            key: CacheKey::default(),
        }
    }
}

impl Default for HitScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The concurrent market-serving engine.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    sup_tx: Sender<SupervisorMsg>,
}

/// Keep injected worker panics (recognizable by their payload) from
/// spamming stderr through the default panic hook; every other panic still
/// reaches the previous hook untouched. Installed once, process-wide, the
/// first time an engine starts with panic injection enabled.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|msg| msg.contains("injected worker panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

impl Engine {
    /// Start an engine: build the queue and cache, spawn the worker pool
    /// and its supervisor.
    pub fn start(config: EngineConfig) -> Self {
        if config.faults.is_some_and(|f| f.panic_rate > 0.0) {
            silence_injected_panics();
        }
        let (job_tx, job_rx) = bounded::<Job>(config.queue_capacity.max(1));
        let (sup_tx, sup_rx) = unbounded::<SupervisorMsg>();
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            hints: ShardedCache::new(config.cache_capacity, config.cache_shards),
            inflight: Mutex::new(HashMap::new()),
            job_tx: Mutex::new(Some(job_tx)),
            closed: AtomicBool::new(false),
            metrics: Metrics::new(),
            faults: config.faults.map(FaultState::new),
            config,
        });
        shared.metrics.set_cache_shards(shared.cache.shards());
        if let Some(id) = &shared.config.node_id {
            shared.metrics.set_node_label(id);
        }
        // Warm restart: reload the cache a previous incarnation drained to
        // disk. Failures degrade to a cold start — a node must come up.
        if let Some(path) = &shared.config.snapshot_path {
            match crate::snapshot::read_snapshot(path) {
                Ok(entries) if !entries.is_empty() => {
                    let n = shared.cache.restore(entries);
                    shared.metrics.add_snapshot_restored(n);
                    shared.metrics.set_cache_entries(shared.cache.len());
                    share_obs::obs_info!(
                        target: TARGET,
                        "snapshot_restored",
                        "path" => path.display().to_string(),
                        "entries" => n
                    );
                }
                Ok(_) => {}
                Err(e) => {
                    share_obs::obs_warn!(
                        target: TARGET,
                        "snapshot_restore_failed",
                        "path" => path.display().to_string(),
                        "error" => e.to_string()
                    );
                }
            }
        }
        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers)
            .map(|i| spawn_worker(&shared, &job_rx, &sup_tx, i).expect("spawn worker thread"))
            .collect();
        let workers = Arc::new(Mutex::new(workers));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&workers);
            let sup_tx = sup_tx.clone();
            std::thread::Builder::new()
                .name("share-engine-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, &job_rx, &sup_rx, &sup_tx, &handles))
                .expect("spawn supervisor thread")
        };
        share_obs::obs_info!(
            target: TARGET,
            "engine_started",
            "workers" => shared.config.workers,
            "queue_capacity" => shared.config.queue_capacity,
            "cache_capacity" => shared.config.cache_capacity,
            "cache_shards" => shared.cache.shards(),
            "restart_budget" => shared.config.resilience.restart_budget
        );
        Self {
            shared,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            sup_tx,
        }
    }

    /// Submit a request. Exactly one [`Reply`] carrying `id` is eventually
    /// delivered on `reply_tx` — immediately for cache hits and rejections,
    /// after the solve for queued or deduplicated requests. The channel must
    /// have room for every outstanding reply (replies are never dropped on a
    /// live channel; a disconnected receiver is silently ignored).
    pub fn submit(&self, id: u64, spec: &SolveSpec, reply_tx: &Sender<Reply>) {
        self.submit_sink(id, spec, ReplySink::Channel(reply_tx.clone()));
    }

    /// [`submit`](Self::submit) carrying an adopted trace context: the
    /// engine opens an `engine_request` hop span under the caller's span
    /// and the reply echoes the hop's wire context.
    pub(crate) fn submit_traced(
        &self,
        id: u64,
        spec: &SolveSpec,
        reply_tx: &Sender<Reply>,
        trace: Option<share_obs::TraceContext>,
    ) {
        self.submit_sink_traced(id, spec, ReplySink::Channel(reply_tx.clone()), trace);
    }

    /// [`submit`](Self::submit) with an arbitrary reply destination: the
    /// event-loop server routes replies straight onto reactor connections
    /// and batch sinks through here. The exactly-one-reply contract is
    /// identical.
    pub(crate) fn submit_sink(&self, id: u64, spec: &SolveSpec, sink: ReplySink) {
        self.submit_sink_traced(id, spec, sink, None);
    }

    /// The full submission path. `trace`, when present, is the upstream
    /// caller's context (router forward span or client root); the engine
    /// hop is opened under it and finished when the reply is delivered.
    pub(crate) fn submit_sink_traced(
        &self,
        id: u64,
        spec: &SolveSpec,
        sink: ReplySink,
        trace: Option<share_obs::TraceContext>,
    ) {
        let enqueued = Instant::now();
        let shared = &self.shared;
        shared.metrics.inc_requests();
        let hop = trace.map(|ctx| {
            share_obs::HopSpan::adopt(
                ctx,
                "engine_request",
                shared.config.node_id.as_deref().unwrap_or("engine"),
            )
        });
        let mut waiter = Waiter {
            id,
            deadline: spec
                .deadline_ms
                .map(|ms| enqueued + Duration::from_millis(ms)),
            enqueued,
            tx: sink,
            trace: hop,
        };
        if shared.closed.load(Ordering::SeqCst) {
            shared.reply(&waiter, Err(EngineError::ShuttingDown));
            return;
        }
        let params = match spec.spec.materialize() {
            Ok(p) => p,
            Err(e) => {
                shared.metrics.inc_invalid();
                share_obs::obs_debug!(
                    target: TARGET,
                    "invalid_spec",
                    "id" => id,
                    "error" => e.to_string()
                );
                shared.reply(&waiter, Err(e));
                return;
            }
        };
        let key = quantize(&params, spec.mode, shared.config.quantizer.param_tol);

        if let Some(mut hit) = shared.cache.get(&key) {
            shared.metrics.inc_cache_hits();
            share_obs::obs_debug!(target: TARGET, "cache_hit", "id" => id, "m" => hit.m);
            #[cfg(debug_assertions)]
            shared.debug_verify_price_tol(&params, spec.mode, &hit);
            hit.cached = true;
            shared.reply(&waiter, Ok(hit));
            return;
        }
        shared.metrics.inc_cache_misses();

        let job_trace;
        {
            let mut inflight = shared.inflight.lock();
            if let Some(waiters) = inflight.get_mut(&key) {
                shared.metrics.inc_deduped();
                share_obs::obs_debug!(
                    target: TARGET,
                    "dedup_join",
                    "id" => id,
                    "waiters" => waiters.len() + 1
                );
                if let Some(hop) = waiter.trace.as_mut() {
                    hop.annotate("dedup", "joined");
                }
                waiters.push(waiter);
                return;
            }
            // Load-shedding admission gate: joining an in-flight solve
            // (above) is free and always admitted, but *new* solver work is
            // shed once the queue is past the watermark — failing fast with
            // a retry hint beats queueing work that will miss its deadline.
            if let Some(watermark) = shared.config.resilience.shed_queue_depth {
                if shared.metrics.queue_depth() >= watermark {
                    drop(inflight);
                    let retry_after_ms = shared.retry_after_hint();
                    shared.metrics.inc_shed();
                    share_obs::obs_debug!(
                        target: TARGET,
                        "shed",
                        "id" => id,
                        "retry_after_ms" => retry_after_ms
                    );
                    if let Some(hop) = waiter.trace.as_mut() {
                        hop.annotate("shed", "true");
                    }
                    shared.reply(&waiter, Err(EngineError::Overloaded { retry_after_ms }));
                    return;
                }
            }
            // The first waiter's hop context travels with the job so the
            // worker can attach its `queue_wait`/`solve` child spans.
            job_trace = waiter.trace.as_ref().map(|h| h.ctx);
            inflight.insert(key.clone(), vec![waiter]);
        }

        let send_result = {
            let guard = shared.job_tx.lock();
            match guard.as_ref() {
                Some(tx) => tx.try_send(Job {
                    key: key.clone(),
                    params,
                    mode: spec.mode,
                    enqueued_at: Instant::now(),
                    trace: job_trace,
                }),
                None => Err(TrySendError::Disconnected(Job {
                    key: key.clone(),
                    params,
                    mode: spec.mode,
                    enqueued_at: Instant::now(),
                    trace: job_trace,
                })),
            }
        };
        if send_result.is_ok() {
            shared.metrics.queue_depth_inc();
            share_obs::obs_debug!(target: TARGET, "enqueued", "id" => id);
        }
        if let Err(e) = send_result {
            let error = match e {
                TrySendError::Full(_) => EngineError::Overloaded {
                    retry_after_ms: shared.retry_after_hint(),
                },
                TrySendError::Disconnected(_) => EngineError::ShuttingDown,
            };
            // Fail everyone attached to the entry we just created (more
            // waiters may have joined between the two locks).
            let waiters = shared.inflight.lock().remove(&key).unwrap_or_default();
            for w in &waiters {
                if matches!(error, EngineError::Overloaded { .. }) {
                    shared.metrics.inc_rejected();
                    share_obs::obs_debug!(target: TARGET, "rejected", "id" => w.id);
                }
                shared.reply(w, Err(error.clone()));
            }
        }
    }

    /// Probe the equilibrium cache for `spec` without entering the
    /// submission path, reusing `scratch`'s buffers so a warm probe
    /// performs **zero heap allocations**. The event-loop server calls
    /// this inline on the reactor thread for every untraced solve,
    /// answering hot repeat traffic without a queue hop.
    ///
    /// `None` means "not servable inline" — a cache miss, an invalid
    /// spec, or a closed engine — and the caller must fall through to
    /// [`submit`](Self::submit), which repeats the work with its full
    /// accounting (invalid-spec error replies, the cache-miss counter,
    /// dedup, shedding). A hit performs the same accounting as the
    /// submission path's hit arm: the request and cache-hit counters, the
    /// debug-build price-tolerance verification, `cached = true` and a
    /// service-latency sample.
    pub fn try_cache_hit(
        &self,
        id: u64,
        spec: &SolveSpec,
        scratch: &mut HitScratch,
    ) -> Option<SolveSummary> {
        let start = Instant::now();
        let shared = &self.shared;
        if shared.closed.load(Ordering::SeqCst) {
            return None;
        }
        spec.spec.materialize_into(&mut scratch.params).ok()?;
        quantize_into(
            &scratch.params,
            spec.mode,
            shared.config.quantizer.param_tol,
            &mut scratch.key,
        );
        let mut hit = shared.cache.get(&scratch.key)?;
        shared.metrics.inc_requests();
        shared.metrics.inc_cache_hits();
        share_obs::obs_debug!(target: TARGET, "cache_hit", "id" => id, "m" => hit.m);
        #[cfg(debug_assertions)]
        shared.debug_verify_price_tol(&scratch.params, spec.mode, &hit);
        hit.cached = true;
        shared.metrics.record_latency(start.elapsed());
        Some(hit)
    }

    /// Submit and block for the reply — the in-process convenience path.
    ///
    /// # Errors
    /// Any [`EngineError`] the request ends in.
    pub fn request(&self, spec: &SolveSpec) -> Result<SolveSummary> {
        let (tx, rx) = bounded(1);
        self.submit(0, spec, &tx);
        rx.recv().map_err(|_| EngineError::ShuttingDown)?.result
    }

    /// Solve a batch: fan every sub-request across the worker pool
    /// concurrently, block until all replies arrive, and return one result
    /// per spec **in submission order**. Sub-requests keep their individual
    /// semantics — cache hits answer immediately, identical in-flight
    /// specs coalesce, per-item deadlines are honored, and a full queue
    /// rejects the overflow with [`EngineError::Overloaded`] rather than
    /// stalling the rest of the batch.
    pub fn solve_batch(&self, specs: &[SolveSpec]) -> Vec<Result<SolveSummary>> {
        self.solve_batch_traced(specs, None)
    }

    /// [`solve_batch`](Self::solve_batch) under an adopted trace context:
    /// every sub-request opens its own `engine_request` hop span as a child
    /// of the caller's span.
    pub(crate) fn solve_batch_traced(
        &self,
        specs: &[SolveSpec],
        trace: Option<share_obs::TraceContext>,
    ) -> Vec<Result<SolveSummary>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let (tx, rx) = bounded::<Reply>(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            self.submit_traced(i as u64, spec, &tx, trace);
        }
        drop(tx);
        // Replies arrive in completion order; slot them back by id. The
        // channel disconnects once every waiter has been answered and
        // dropped, so this drains without counting.
        let mut results: Vec<Result<SolveSummary>> =
            vec![Err(EngineError::ShuttingDown); specs.len()];
        for reply in rx {
            if let Some(slot) = results.get_mut(reply.id as usize) {
                *slot = reply.result;
            }
        }
        results
    }

    /// Point-in-time metrics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Render every engine metric as a Prometheus text exposition (0.0.4),
    /// refreshing the cache-size gauge first.
    pub fn render_prometheus(&self) -> String {
        self.shared
            .metrics
            .set_cache_entries(self.shared.cache.len());
        self.shared.metrics.render_prometheus()
    }

    /// The engine's metrics, for in-process consumers (examples, benches).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Identity and cache occupancy of this engine process (the `node_info`
    /// wire request).
    pub fn node_info(&self) -> NodeInfo {
        NodeInfo {
            node_id: self
                .shared
                .config
                .node_id
                .clone()
                .unwrap_or_else(|| "unnamed".to_string()),
            cache_entries: self.shared.cache.len(),
            cache_shards: self.shared.cache.shards(),
            workers: self.shared.config.workers,
            requests: self.shared.metrics.snapshot().requests,
            snapshot_path: self
                .shared
                .config
                .snapshot_path
                .as_ref()
                .map(|p| p.display().to_string()),
        }
    }

    /// Serialize the current cache contents to the configured snapshot
    /// path (the `snapshot` wire request; also runs automatically on
    /// graceful shutdown). Returns the number of entries written, or 0
    /// with no side effect when no snapshot path is configured.
    ///
    /// # Errors
    /// Any I/O failure writing the snapshot file.
    pub fn write_snapshot(&self) -> std::io::Result<usize> {
        let Some(path) = &self.shared.config.snapshot_path else {
            return Ok(0);
        };
        let entries = self.shared.cache.export();
        let n = crate::snapshot::write_snapshot(path, &entries)?;
        self.shared.metrics.inc_snapshot_writes();
        Ok(n)
    }

    /// Record a protocol-level malformed request (used by the servers).
    pub(crate) fn note_invalid(&self) {
        self.shared.metrics.inc_invalid();
    }

    /// Graceful shutdown: stop accepting work, let the workers drain the
    /// queue, fail any remaining waiters, and return the final stats.
    pub fn shutdown(&self) -> StatsSnapshot {
        self.shutdown_impl();
        self.stats()
    }

    /// Consult the fault plan's connection-drop site (used by the servers;
    /// counts the injection when it fires).
    pub(crate) fn should_drop_connection(&self) -> bool {
        self.shared.faults.as_ref().is_some_and(|f| {
            let hit = f.roll(FaultSite::ConnDrop);
            if hit {
                self.shared.metrics.inc_fault_injection(FaultSite::ConnDrop);
            }
            hit
        })
    }

    fn shutdown_impl(&self) {
        let already_closed = self.shared.closed.swap(true, Ordering::SeqCst);
        // Dropping the sender disconnects the channel; workers finish the
        // jobs already queued, then exit.
        *self.shared.job_tx.lock() = None;
        // Stop the supervisor first so a worker dying while we drain is
        // not respawned into a closing engine (its death notice is simply
        // never read).
        let _ = self.sup_tx.send(SupervisorMsg::Shutdown);
        if let Some(h) = self.supervisor.lock().take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
        // With zero workers (test configurations) queued jobs are dropped;
        // fail their waiters rather than leaving them hanging.
        let leftover: Vec<Waiter> = self
            .shared
            .inflight
            .lock()
            .drain()
            .flat_map(|(_, v)| v)
            .collect();
        for w in &leftover {
            self.shared.reply(w, Err(EngineError::ShuttingDown));
        }
        if !already_closed {
            // Drain-time warm snapshot: the workers have exited, so the
            // cache is quiescent. A failed write is logged, not fatal —
            // shutdown must complete either way.
            if self.shared.config.snapshot_path.is_some() {
                if let Err(e) = self.write_snapshot() {
                    share_obs::obs_warn!(
                        target: TARGET,
                        "snapshot_write_failed",
                        "error" => e.to_string()
                    );
                }
            }
            let s = self.shared.metrics.snapshot();
            share_obs::obs_info!(
                target: TARGET,
                "engine_shutdown",
                "requests" => s.requests,
                "solves" => s.solves,
                "cache_hits" => s.cache_hits
            );
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_solves_and_caches() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let spec = SolveSpec::seeded(20, 3, SolveMode::Direct);
        let first = engine.request(&spec).unwrap();
        assert!(!first.cached);
        assert_eq!(first.m, 20);
        assert_eq!(first.method, SolveMethod::Analytic);
        let second = engine.request(&spec).unwrap();
        assert!(second.cached);
        assert_eq!(second.p_m, first.p_m);
        let stats = engine.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn modes_map_to_solver_paths() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let direct = engine
            .request(&SolveSpec::seeded(10, 1, SolveMode::Direct))
            .unwrap();
        assert_eq!(direct.method, SolveMethod::Analytic);
        let mf = engine
            .request(&SolveSpec::seeded(10, 1, SolveMode::MeanField))
            .unwrap();
        assert_eq!(mf.method, SolveMethod::MeanField);
        let num = engine
            .request(&SolveSpec::seeded(10, 1, SolveMode::Numeric))
            .unwrap();
        assert_eq!(num.method, SolveMethod::Numeric);
        // Same market, three distinct cache keys.
        assert_eq!(engine.stats().solves, 3);
    }

    #[test]
    fn invalid_spec_is_rejected_immediately() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let bad = SolveSpec::seeded(0, 1, SolveMode::Direct);
        assert!(matches!(
            engine.request(&bad),
            Err(EngineError::InvalidRequest(_))
        ));
        assert_eq!(engine.stats().invalid, 1);
    }

    #[test]
    fn shutdown_snapshot_restores_warm_on_restart() {
        let dir = std::env::temp_dir().join(format!("share-engine-snap-{}", std::process::id()));
        let path = dir.join("node.snap");
        let config = EngineConfig {
            workers: 2,
            snapshot_path: Some(path.clone()),
            node_id: Some("n0".to_string()),
            ..EngineConfig::default()
        };
        let spec = SolveSpec::seeded(12, 7, SolveMode::Direct);
        {
            let engine = Engine::start(config.clone());
            assert!(!engine.request(&spec).unwrap().cached);
            engine.shutdown();
        }
        // A respawned engine on the same path must answer the same key
        // from cache on the *first* request.
        let engine = Engine::start(config);
        assert!(engine.metrics().snapshot_restored() >= 1);
        let again = engine.request(&spec).unwrap();
        assert!(again.cached, "restored node must serve a warm hit");
        assert_eq!(engine.node_info().node_id, "n0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        engine.shutdown();
        assert!(matches!(
            engine.request(&SolveSpec::seeded(5, 1, SolveMode::Direct)),
            Err(EngineError::ShuttingDown)
        ));
    }
}
