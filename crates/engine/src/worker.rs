//! Solver workers: drain the job queue, honor deadlines, publish to the
//! cache, and fan replies out to every waiter attached to a job.
//!
//! Each worker observes the queue wait of every job it dequeues, wraps the
//! actual solver run in a `solve` span, and feeds the per-mode solve
//! latency and per-stage (stage1/stage2/stage3) histograms from the
//! solver's own [`StageTimings`](share_market::solver::StageTimings).
//!
//! ## Fault tolerance
//!
//! The solver runs inside `catch_unwind`: a panic (injected by the fault
//! plan or real) becomes a typed [`EngineError::WorkerPanic`] reply for
//! *every* waiter attached to the job — the in-flight dedup slot is
//! released, nothing is stranded — and the worker thread then exits so
//! the supervisor can respawn it (let-it-crash).
//!
//! Direct/numeric solves go through a **degradation ladder**: when the
//! queue is past the degrade watermark, the job overstayed its queue-wait
//! budget, or the primary solver errors, the worker answers with
//! `solve_mean_field` instead (Theorem 5.1 makes this principled — the
//! approximation error is bounded by `O(1/m)`), tagging the reply with
//! [`DegradeInfo`] so callers can judge fidelity. Degraded summaries are
//! **never cached**: the cache key promises the requested solver path
//! within `price_tol`, which a mean-field answer does not honor.

use crate::engine::{DegradeInfo, DegradeReason, Job, Shared, SolveSummary, Waiter};
use crate::error::{EngineError, Result};
use crate::fault::FaultSite;
use crate::spec::SolveMode;
use crate::supervisor::SupervisorMsg;
use crossbeam::channel::{Receiver, Sender};
use share_market::meanfield::theorem51_bounds;
use share_market::params::MarketParams;
use crate::quantize::coarse_hint_key;
use share_market::solver::{
    solve_mean_field_timed, solve_numeric_timed, solve_numeric_warm, solve_timed, WarmStart,
};
use share_obs::{self as obs, Level};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Tracing target of the worker lifecycle events.
const TARGET: &str = "share_engine::worker";

/// Record one child span of a traced job's engine hop (`ctx` is the hop
/// root the submission path stored on the [`Job`]). The span is buffered
/// in the trace ring's pending set; it survives only if the hop root is
/// kept by the tail sampler.
fn record_trace_child(
    trace: Option<&obs::TraceContext>,
    shared: &Shared,
    name: &str,
    start: Instant,
    duration: Duration,
    annotations: Vec<(String, String)>,
) {
    let Some(ctx) = trace else { return };
    let child = ctx.child();
    obs::trace::record_span(obs::SpanRecord {
        trace_id: ctx.trace_id,
        span_id: child.span_id,
        parent_span_id: ctx.span_id,
        name: name.to_string(),
        node: shared
            .config
            .node_id
            .clone()
            .unwrap_or_else(|| "engine".to_string()),
        start_us: obs::trace::anchored_us(start),
        duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
        annotations,
    });
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Run the requested solver path under the panic guard, with fault
/// injection applied. `Err(msg)` means the solve panicked (the message is
/// the panic payload); the inner result is the ordinary solver outcome.
fn run_primary(
    shared: &Shared,
    params: &MarketParams,
    mode: SolveMode,
    trace: Option<&obs::TraceContext>,
) -> std::result::Result<Result<SolveSummary>, String> {
    let mut sp = obs::span(Level::Debug, TARGET, "solve");
    sp.record("m", params.m() as u64);
    sp.record("mode", mode.as_str());
    shared.metrics.inflight_inc();
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(faults) = &shared.faults {
            if faults.latency_ms() > 0 && faults.roll(FaultSite::SolveLatency) {
                shared.metrics.inc_fault_injection(FaultSite::SolveLatency);
                std::thread::sleep(Duration::from_millis(faults.latency_ms()));
            }
            if faults.roll(FaultSite::WorkerPanic) {
                shared.metrics.inc_fault_injection(FaultSite::WorkerPanic);
                panic!(
                    "injected worker panic (fault plan seed {})",
                    faults.plan().seed
                );
            }
            if mode != SolveMode::MeanField && faults.roll(FaultSite::Divergence) {
                shared.metrics.inc_fault_injection(FaultSite::Divergence);
                return Err(EngineError::Solver(
                    "injected solver divergence (fault plan)".to_string(),
                ));
            }
        }
        match mode {
            SolveMode::Direct => solve_timed(params),
            SolveMode::MeanField => solve_mean_field_timed(params),
            SolveMode::Numeric if shared.config.warm_start => {
                // Warm-start from the nearest cached equilibrium: neighboring
                // markets (same coarse quantization bucket) have nearby SNE
                // prices, so their solution brackets ours.
                let hkey = coarse_hint_key(params, mode, shared.config.quantizer.param_tol);
                let hint = shared.hints.get(&hkey);
                if hint.is_some() {
                    shared.metrics.inc_warm_hint_hits();
                } else {
                    shared.metrics.inc_warm_hint_misses();
                }
                solve_numeric_warm(params, hint).map(|(sol, timings, stats)| {
                    if stats.fell_back {
                        shared.metrics.inc_warm_fallbacks();
                    }
                    shared.hints.insert(
                        hkey,
                        WarmStart {
                            p_m: sol.p_m,
                            p_d: sol.p_d,
                        },
                    );
                    (sol, timings)
                })
            }
            SolveMode::Numeric => solve_numeric_timed(params),
        }
        .map_err(|e| EngineError::Solver(e.to_string()))
    }));
    let elapsed = t0.elapsed();
    shared.metrics.inflight_dec();
    shared.metrics.record_solve_latency(mode, elapsed);
    let solver_result = match outcome {
        Err(payload) => {
            shared.metrics.inc_worker_panics();
            let msg = panic_message(&*payload);
            share_obs::obs_warn!(
                target: TARGET,
                "solve_panicked",
                "mode" => mode.as_str(),
                "message" => msg.clone()
            );
            return Err(msg);
        }
        Ok(r) => r,
    };
    Ok(solver_result.map(|(sol, timings)| {
        shared.metrics.record_stage_timings(&timings);
        record_trace_child(
            trace,
            shared,
            "solve",
            t0,
            elapsed,
            vec![
                ("mode".to_string(), mode.as_str().to_string()),
                ("stage1_ns".to_string(), timings.stage1_ns.to_string()),
                ("stage2_ns".to_string(), timings.stage2_ns.to_string()),
                ("stage3_ns".to_string(), timings.stage3_ns.to_string()),
            ],
        );
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        sp.record("solve_micros", micros);
        sp.finish();
        share_obs::obs_debug!(
            target: TARGET,
            "solve_done",
            "m" => sol.tau.len(),
            "mode" => mode.as_str(),
            "solve_micros" => micros,
            "stage1_ns" => timings.stage1_ns,
            "stage2_ns" => timings.stage2_ns,
            "stage3_ns" => timings.stage3_ns
        );
        SolveSummary::from_solution(&sol, micros)
    }))
}

/// The degradation ladder's fallback rung: answer with `solve_mean_field`
/// and tag the summary with the Theorem 5.1 fidelity bound. No fault
/// injection applies here — the fallback is the recovery path.
fn degrade_to_mean_field(
    shared: &Shared,
    params: &MarketParams,
    reason: DegradeReason,
    trace: Option<&obs::TraceContext>,
) -> Result<SolveSummary> {
    shared.metrics.inflight_inc();
    let t0 = Instant::now();
    let outcome = solve_mean_field_timed(params);
    let elapsed = t0.elapsed();
    shared.metrics.inflight_dec();
    shared
        .metrics
        .record_solve_latency(SolveMode::MeanField, elapsed);
    let (sol, timings) = outcome.map_err(|e| EngineError::Solver(e.to_string()))?;
    shared.metrics.record_stage_timings(&timings);
    record_trace_child(
        trace,
        shared,
        "solve",
        t0,
        elapsed,
        vec![
            ("mode".to_string(), "mean_field".to_string()),
            ("degraded".to_string(), format!("{reason:?}")),
        ],
    );
    let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
    let mut summary = SolveSummary::from_solution(&sol, micros);
    let (bound_lower, bound_upper) = theorem51_bounds(summary.m.max(1));
    summary.degraded = Some(DegradeInfo {
        reason,
        bound_lower,
        bound_upper,
    });
    share_obs::obs_info!(
        target: TARGET,
        "degraded_to_mean_field",
        "m" => summary.m,
        "reason" => format!("{reason:?}"),
        "bound_upper" => bound_upper
    );
    Ok(summary)
}

/// Solve one job through the degradation ladder. The boolean is `true`
/// when the solve panicked and the worker must die after fanning out.
fn solve_job(shared: &Shared, job: &Job) -> (Result<SolveSummary>, bool) {
    let resilience = &shared.config.resilience;
    if job.mode != SolveMode::MeanField {
        // Proactive rungs: under shed-level queue pressure, or past the
        // queue-wait budget, skip the expensive path entirely.
        let proactive = resilience
            .degrade_queue_depth
            .filter(|&wm| shared.metrics.queue_depth() >= wm)
            .map(|_| DegradeReason::Shed)
            .or_else(|| {
                resilience
                    .degrade_queue_wait_ms
                    .filter(|&ms| job.enqueued_at.elapsed() > Duration::from_millis(ms))
                    .map(|_| DegradeReason::TimeBudget)
            });
        if let Some(reason) = proactive {
            if let Ok(summary) = degrade_to_mean_field(shared, &job.params, reason, job.trace.as_ref())
            {
                return (Ok(summary), false);
            }
        }
    }
    match run_primary(shared, &job.params, job.mode, job.trace.as_ref()) {
        Err(panic_msg) => (Err(EngineError::WorkerPanic(panic_msg)), true),
        Ok(Ok(summary)) => (Ok(summary), false),
        Ok(Err(primary_err)) => {
            if job.mode != SolveMode::MeanField && resilience.degrade_on_error {
                if let Ok(summary) = degrade_to_mean_field(
                    shared,
                    &job.params,
                    DegradeReason::SolverError,
                    job.trace.as_ref(),
                ) {
                    return (Ok(summary), false);
                }
            }
            (Err(primary_err), false)
        }
    }
}

/// Split off the waiters whose deadline has already passed.
fn split_expired(waiters: Vec<Waiter>, now: Instant) -> (Vec<Waiter>, Vec<Waiter>) {
    waiters
        .into_iter()
        .partition(|w| w.deadline.map_or(true, |d| d > now))
}

fn expire(shared: &Shared, expired: &[Waiter]) {
    for w in expired {
        shared.metrics.inc_deadline_expired();
        share_obs::obs_debug!(target: TARGET, "deadline_expired", "id" => w.id);
        shared.reply(w, Err(EngineError::DeadlineExpired));
    }
}

/// Process one job end to end. Returns `true` when the solve panicked and
/// the worker must exit for respawn (the waiters have already been
/// answered and the dedup slot released by then).
fn process(shared: &Shared, job: Job) -> bool {
    // The queue wait is over the moment a worker picks the job up.
    record_trace_child(
        job.trace.as_ref(),
        shared,
        "queue_wait",
        job.enqueued_at,
        job.enqueued_at.elapsed(),
        Vec::new(),
    );
    // Deadline pre-check: requests that already expired get a structured
    // error now; if nobody is left waiting, skip the solve entirely.
    let now = Instant::now();
    let has_live = {
        let mut inflight = shared.inflight.lock();
        let waiters = inflight.remove(&job.key).unwrap_or_default();
        let (live, expired) = split_expired(waiters, now);
        let has_live = !live.is_empty();
        if has_live {
            // Re-insert so submissions arriving during the solve still
            // coalesce onto this job.
            inflight.insert(job.key.clone(), live);
        }
        expire(shared, &expired);
        has_live
    };
    if !has_live {
        return false;
    }

    // A racing submission may have solved this key already (miss-then-queue
    // happens outside the cache locks); answer from the cache if so.
    let cached = shared.cache.get(&job.key);
    let (result, panicked) = match cached {
        Some(mut hit) => {
            // The job's originating request ends up cache-served after all;
            // count it so the per-request accounting stays exhaustive.
            shared.metrics.inc_cache_hits();
            #[cfg(debug_assertions)]
            shared.debug_verify_price_tol(&job.params, job.mode, &hit);
            hit.cached = true;
            (Ok(hit), false)
        }
        None => {
            let (result, panicked) = solve_job(shared, &job);
            if let Ok(summary) = &result {
                shared.metrics.inc_solves();
                // Degraded answers are mean-field stand-ins; caching them
                // under the requested mode's key would serve out-of-
                // tolerance prices to future full-fidelity requests.
                if summary.degraded.is_none() {
                    shared.cache.insert(job.key.clone(), summary.clone());
                }
            }
            (result, panicked)
        }
    };

    // Fan out to everyone attached by now; late expiries still count.
    let waiters = shared.inflight.lock().remove(&job.key).unwrap_or_default();
    let now = Instant::now();
    let (live, expired) = split_expired(waiters, now);
    expire(shared, &expired);
    for w in &live {
        if matches!(&result, Ok(s) if s.degraded.is_some()) {
            shared.metrics.inc_degraded();
        }
        shared.reply(w, result.clone());
    }
    panicked
}

/// Worker thread body: process jobs until the queue disconnects (engine
/// shutdown drains the queue first, so that is a graceful exit) or a solve
/// panics — then reply `WorkerPanic` to the stranded waiters, notify the
/// supervisor, and die so a fresh worker can take the slot.
pub(crate) fn worker_loop(
    shared: &Shared,
    rx: &Receiver<Job>,
    slot: usize,
    sup_tx: &Sender<SupervisorMsg>,
) {
    while let Ok(job) = rx.recv() {
        shared.metrics.queue_depth_dec(job.enqueued_at.elapsed());
        let key = job.key.clone();
        match catch_unwind(AssertUnwindSafe(|| process(shared, job))) {
            Ok(false) => continue,
            Ok(true) => {
                // The solver panicked inside its own guard: every waiter
                // already holds a WorkerPanic reply and the dedup slot is
                // free. Die and let the supervisor respawn the slot.
                share_obs::obs_warn!(target: TARGET, "worker_died", "slot" => slot);
                let _ = sup_tx.send(SupervisorMsg::WorkerDied(slot));
                return;
            }
            Err(payload) => {
                // Last-resort guard: the panic escaped `process` itself
                // (outside the solver guard). Release the job's dedup slot
                // and answer its waiters so nothing hangs, then die.
                shared.metrics.inc_worker_panics();
                let msg = panic_message(&*payload);
                share_obs::obs_warn!(
                    target: TARGET,
                    "worker_died_unguarded",
                    "slot" => slot,
                    "message" => msg.clone()
                );
                let waiters = shared.inflight.lock().remove(&key).unwrap_or_default();
                for w in &waiters {
                    shared.reply(w, Err(EngineError::WorkerPanic(msg.clone())));
                }
                let _ = sup_tx.send(SupervisorMsg::WorkerDied(slot));
                return;
            }
        }
    }
}
