//! Solver workers: drain the job queue, honor deadlines, publish to the
//! cache, and fan replies out to every waiter attached to a job.

use crate::engine::{Job, Shared, SolveSummary, Waiter};
use crate::error::{EngineError, Result};
use crate::spec::SolveMode;
use crossbeam::channel::Receiver;
use share_market::params::MarketParams;
use share_market::solver::{solve, solve_mean_field, solve_numeric};
use std::time::Instant;

/// Run the chosen solver path.
fn run_solver(params: &MarketParams, mode: SolveMode) -> Result<SolveSummary> {
    let t0 = Instant::now();
    let sol = match mode {
        SolveMode::Direct => solve(params),
        SolveMode::MeanField => solve_mean_field(params),
        SolveMode::Numeric => solve_numeric(params),
    }
    .map_err(|e| EngineError::Solver(e.to_string()))?;
    let micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    Ok(SolveSummary::from_solution(&sol, micros))
}

/// Split off the waiters whose deadline has already passed.
fn split_expired(waiters: Vec<Waiter>, now: Instant) -> (Vec<Waiter>, Vec<Waiter>) {
    waiters
        .into_iter()
        .partition(|w| w.deadline.map_or(true, |d| d > now))
}

fn process(shared: &Shared, job: Job) {
    // Deadline pre-check: requests that already expired get a structured
    // error now; if nobody is left waiting, skip the solve entirely.
    let now = Instant::now();
    let has_live = {
        let mut inflight = shared.inflight.lock();
        let waiters = inflight.remove(&job.key).unwrap_or_default();
        let (live, expired) = split_expired(waiters, now);
        let has_live = !live.is_empty();
        if has_live {
            // Re-insert so submissions arriving during the solve still
            // coalesce onto this job.
            inflight.insert(job.key.clone(), live);
        }
        for w in &expired {
            shared.metrics.inc_deadline_expired();
            shared.reply(w, Err(EngineError::DeadlineExpired));
        }
        has_live
    };
    if !has_live {
        return;
    }

    // A racing submission may have solved this key already (miss-then-queue
    // happens outside the cache lock); answer from the cache if so.
    let cached = shared.cache.lock().get(&job.key);
    let result = match cached {
        Some(mut hit) => {
            // The job's originating request ends up cache-served after all;
            // count it so the per-request accounting stays exhaustive.
            shared.metrics.inc_cache_hits();
            hit.cached = true;
            Ok(hit)
        }
        None => {
            let result = run_solver(&job.params, job.mode);
            if let Ok(summary) = &result {
                shared.metrics.inc_solves();
                shared.cache.lock().insert(job.key.clone(), summary.clone());
            }
            result
        }
    };

    // Fan out to everyone attached by now; late expiries still count.
    let waiters = shared.inflight.lock().remove(&job.key).unwrap_or_default();
    let now = Instant::now();
    let (live, expired) = split_expired(waiters, now);
    for w in &expired {
        shared.metrics.inc_deadline_expired();
        shared.reply(w, Err(EngineError::DeadlineExpired));
    }
    for w in &live {
        shared.reply(w, result.clone());
    }
}

/// Worker thread body: process jobs until the queue disconnects (engine
/// shutdown drains the queue first, so this is a graceful exit).
pub(crate) fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        process(shared, job);
    }
}
