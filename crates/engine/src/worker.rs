//! Solver workers: drain the job queue, honor deadlines, publish to the
//! cache, and fan replies out to every waiter attached to a job.
//!
//! Each worker observes the queue wait of every job it dequeues, wraps the
//! actual solver run in a `solve` span, and feeds the per-mode solve
//! latency and per-stage (stage1/stage2/stage3) histograms from the
//! solver's own [`StageTimings`].

use crate::engine::{Job, Shared, SolveSummary, Waiter};
use crate::error::{EngineError, Result};
use crate::spec::SolveMode;
use crossbeam::channel::Receiver;
use share_market::params::MarketParams;
use share_market::solver::{solve_mean_field_timed, solve_numeric_timed, solve_timed};
use share_obs::{self as obs, Level};
use std::time::Instant;

/// Tracing target of the worker lifecycle events.
const TARGET: &str = "share_engine::worker";

/// Run the chosen solver path, recording solve/stage histograms.
fn run_solver(shared: &Shared, params: &MarketParams, mode: SolveMode) -> Result<SolveSummary> {
    let mut sp = obs::span(Level::Debug, TARGET, "solve");
    sp.record("m", params.m() as u64);
    sp.record("mode", mode.as_str());
    shared.metrics.inflight_inc();
    let t0 = Instant::now();
    let outcome = match mode {
        SolveMode::Direct => solve_timed(params),
        SolveMode::MeanField => solve_mean_field_timed(params),
        SolveMode::Numeric => solve_numeric_timed(params),
    };
    let elapsed = t0.elapsed();
    shared.metrics.inflight_dec();
    shared.metrics.record_solve_latency(mode, elapsed);
    let (sol, timings) = outcome.map_err(|e| EngineError::Solver(e.to_string()))?;
    shared.metrics.record_stage_timings(&timings);
    let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
    sp.record("solve_micros", micros);
    sp.finish();
    share_obs::obs_debug!(
        target: TARGET,
        "solve_done",
        "m" => sol.tau.len(),
        "mode" => mode.as_str(),
        "solve_micros" => micros,
        "stage1_ns" => timings.stage1_ns,
        "stage2_ns" => timings.stage2_ns,
        "stage3_ns" => timings.stage3_ns
    );
    Ok(SolveSummary::from_solution(&sol, micros))
}

/// Split off the waiters whose deadline has already passed.
fn split_expired(waiters: Vec<Waiter>, now: Instant) -> (Vec<Waiter>, Vec<Waiter>) {
    waiters
        .into_iter()
        .partition(|w| w.deadline.map_or(true, |d| d > now))
}

fn expire(shared: &Shared, expired: &[Waiter]) {
    for w in expired {
        shared.metrics.inc_deadline_expired();
        share_obs::obs_debug!(target: TARGET, "deadline_expired", "id" => w.id);
        shared.reply(w, Err(EngineError::DeadlineExpired));
    }
}

fn process(shared: &Shared, job: Job) {
    // Deadline pre-check: requests that already expired get a structured
    // error now; if nobody is left waiting, skip the solve entirely.
    let now = Instant::now();
    let has_live = {
        let mut inflight = shared.inflight.lock();
        let waiters = inflight.remove(&job.key).unwrap_or_default();
        let (live, expired) = split_expired(waiters, now);
        let has_live = !live.is_empty();
        if has_live {
            // Re-insert so submissions arriving during the solve still
            // coalesce onto this job.
            inflight.insert(job.key.clone(), live);
        }
        expire(shared, &expired);
        has_live
    };
    if !has_live {
        return;
    }

    // A racing submission may have solved this key already (miss-then-queue
    // happens outside the cache locks); answer from the cache if so.
    let cached = shared.cache.get(&job.key);
    let result = match cached {
        Some(mut hit) => {
            // The job's originating request ends up cache-served after all;
            // count it so the per-request accounting stays exhaustive.
            shared.metrics.inc_cache_hits();
            #[cfg(debug_assertions)]
            shared.debug_verify_price_tol(&job.params, job.mode, &hit);
            hit.cached = true;
            Ok(hit)
        }
        None => {
            let result = run_solver(shared, &job.params, job.mode);
            if let Ok(summary) = &result {
                shared.metrics.inc_solves();
                shared.cache.insert(job.key.clone(), summary.clone());
            }
            result
        }
    };

    // Fan out to everyone attached by now; late expiries still count.
    let waiters = shared.inflight.lock().remove(&job.key).unwrap_or_default();
    let now = Instant::now();
    let (live, expired) = split_expired(waiters, now);
    expire(shared, &expired);
    for w in &live {
        shared.reply(w, result.clone());
    }
}

/// Worker thread body: process jobs until the queue disconnects (engine
/// shutdown drains the queue first, so this is a graceful exit).
pub(crate) fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        shared.metrics.queue_depth_dec(job.enqueued_at.elapsed());
        process(shared, job);
    }
}
