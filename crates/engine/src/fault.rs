//! Deterministic fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] describes *which* faults to inject and *how often*; the
//! engine owns one [`FaultState`] built from it and consults it at four
//! sites:
//!
//! | site | effect |
//! |------|--------|
//! | worker panic | the solver closure panics mid-solve; the worker converts it into a typed `worker_panic` reply and dies, and the supervisor respawns it |
//! | solve latency | the solve sleeps for `latency_ms` first, building queue pressure so shedding and degradation trip |
//! | solver divergence | a direct/numeric solve reports a solver error, exercising the mean-field degradation ladder |
//! | connection drop | the server closes a connection after reading a request, without replying |
//!
//! Decisions are **seeded and deterministic**: each site keeps its own
//! sequence counter, and the `n`-th decision at a site is a pure function
//! of `(seed, site, n)` (a splitmix64 hash compared against the rate).
//! Thread interleaving changes *which request* draws decision `n`, but the
//! number of injections over `N` draws is identical run to run — chaos
//! tests and benches can assert on aggregate fault counts under a fixed
//! seed.
//!
//! Plans parse from the compact `--fault-plan`/`SHARE_FAULT_PLAN` syntax:
//!
//! ```text
//! seed=42,panic=0.25,drop=0.25,latency=0.1,latency_ms=50,diverge=0.1
//! ```

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside the solver closure (worker dies, supervisor respawns).
    WorkerPanic,
    /// Artificial latency added to a solve.
    SolveLatency,
    /// A direct/numeric solve forced to report divergence.
    Divergence,
    /// A server connection closed after reading a request.
    ConnDrop,
}

impl FaultSite {
    /// Every injection site, in metric-label order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::WorkerPanic,
        FaultSite::SolveLatency,
        FaultSite::Divergence,
        FaultSite::ConnDrop,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::SolveLatency => 1,
            FaultSite::Divergence => 2,
            FaultSite::ConnDrop => 3,
        }
    }

    /// Stable name, used as the `kind` label of
    /// `share_fault_injections_total`.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::SolveLatency => "solve_latency",
            FaultSite::Divergence => "divergence",
            FaultSite::ConnDrop => "conn_drop",
        }
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// All rates are probabilities in `[0, 1]`; `0` disables the site. The
/// default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for the per-site decision streams.
    #[serde(default)]
    pub seed: u64,
    /// Probability that a solve panics mid-run.
    #[serde(default)]
    pub panic_rate: f64,
    /// Probability that a solve sleeps for [`FaultPlan::latency_ms`] first.
    #[serde(default)]
    pub latency_rate: f64,
    /// Artificial latency per injected-slow solve, in milliseconds.
    #[serde(default)]
    pub latency_ms: u64,
    /// Probability that a direct/numeric solve reports divergence.
    #[serde(default)]
    pub diverge_rate: f64,
    /// Probability that the server drops a connection after a request.
    #[serde(default)]
    pub drop_rate: f64,
}

impl FaultPlan {
    /// `true` when no site can ever fire.
    pub fn is_noop(&self) -> bool {
        self.panic_rate <= 0.0
            && (self.latency_rate <= 0.0 || self.latency_ms == 0)
            && self.diverge_rate <= 0.0
            && self.drop_rate <= 0.0
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.panic_rate,
            FaultSite::SolveLatency => self.latency_rate,
            FaultSite::Divergence => self.diverge_rate,
            FaultSite::ConnDrop => self.drop_rate,
        }
    }

    /// Parse the compact `key=value,key=value` plan syntax used by the
    /// `--fault-plan` CLI flag and the `SHARE_FAULT_PLAN` env variable.
    ///
    /// Keys: `seed` (u64), `panic`, `latency`, `diverge`, `drop` (rates in
    /// `[0,1]`), `latency_ms` (u64). Unknown keys and out-of-range rates
    /// are rejected.
    ///
    /// # Errors
    /// A human-readable description of the first malformed entry.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry `{entry}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| -> Result<f64, String> {
                let x: f64 = v
                    .parse()
                    .map_err(|_| format!("fault plan {key}: `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&x) {
                    return Err(format!("fault plan {key}: rate `{v}` must be in [0, 1]"));
                }
                Ok(x)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault plan seed: `{value}` is not a u64"))?;
                }
                "latency_ms" => {
                    plan.latency_ms = value
                        .parse()
                        .map_err(|_| format!("fault plan latency_ms: `{value}` is not a u64"))?;
                }
                "panic" => plan.panic_rate = rate(value)?,
                "latency" => plan.latency_rate = rate(value)?,
                "diverge" => plan.diverge_rate = rate(value)?,
                "drop" => plan.drop_rate = rate(value)?,
                other => {
                    return Err(format!(
                        "fault plan: unknown key `{other}` (expected \
                         seed|panic|latency|latency_ms|diverge|drop)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer — enough to turn
/// `(seed, site, n)` into an independent uniform draw. Also drives the
/// client's deterministic backoff jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Live injection state: the plan plus per-site sequence and hit counters.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    seq: [AtomicU64; 4],
    injected: [AtomicU64; 4],
}

impl FaultState {
    /// Build the live state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            seq: Default::default(),
            injected: Default::default(),
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the next decision for `site`: `true` means inject. The `n`-th
    /// draw at a site is deterministic in `(seed, site, n)`.
    pub fn roll(&self, site: FaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let idx = site.index();
        let n = self.seq[idx].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(0x1000_0001 * (idx as u64 + 1))
                .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let hit = u < rate;
        if hit {
            self.injected[idx].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Injections so far at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Decisions drawn so far at `site`.
    pub fn drawn(&self, site: FaultSite) -> u64 {
        self.seq[site.index()].load(Ordering::Relaxed)
    }

    /// The configured artificial solve latency (0 disables).
    pub fn latency_ms(&self) -> u64 {
        self.plan.latency_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_plan_roundtrips_fields() {
        let plan = FaultPlan::parse(
            "seed=42, panic=0.25, drop=0.25, latency=0.1, latency_ms=50, diverge=0.1",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.panic_rate, 0.25);
        assert_eq!(plan.drop_rate, 0.25);
        assert_eq!(plan.latency_rate, 0.1);
        assert_eq!(plan.latency_ms, 50);
        assert_eq!(plan.diverge_rate, 0.1);
        assert!(!plan.is_noop());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "panic",         // no value
            "panic=1.5",     // rate out of range
            "panic=-0.1",    // negative rate
            "panic=NaN",     // non-finite
            "frobnicate=1",  // unknown key
            "seed=abc",      // non-integer seed
            "latency_ms=-1", // negative duration
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn empty_plan_is_noop() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan, FaultPlan::default());
        // latency without latency_ms still injects nothing observable.
        assert!(FaultPlan::parse("latency=0.5").unwrap().is_noop());
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 7,
            panic_rate: 0.25,
            drop_rate: 0.5,
            ..FaultPlan::default()
        };
        let a = FaultState::new(plan);
        let b = FaultState::new(plan);
        let draws_a: Vec<bool> = (0..512).map(|_| a.roll(FaultSite::WorkerPanic)).collect();
        let draws_b: Vec<bool> = (0..512).map(|_| b.roll(FaultSite::WorkerPanic)).collect();
        assert_eq!(draws_a, draws_b, "same seed must give the same stream");
        assert_eq!(
            a.injected(FaultSite::WorkerPanic),
            b.injected(FaultSite::WorkerPanic)
        );

        let c = FaultState::new(FaultPlan { seed: 8, ..plan });
        let draws_c: Vec<bool> = (0..512).map(|_| c.roll(FaultSite::WorkerPanic)).collect();
        assert_ne!(draws_a, draws_c, "different seeds must diverge");
    }

    #[test]
    fn injection_frequency_tracks_rate() {
        let state = FaultState::new(FaultPlan {
            seed: 1,
            panic_rate: 0.25,
            ..FaultPlan::default()
        });
        for _ in 0..4096 {
            state.roll(FaultSite::WorkerPanic);
        }
        let hits = state.injected(FaultSite::WorkerPanic) as f64;
        let freq = hits / 4096.0;
        assert!((freq - 0.25).abs() < 0.03, "rate 0.25 but observed {freq}");
        // Disabled sites never fire and never advance their stream.
        assert_eq!(state.injected(FaultSite::Divergence), 0);
        assert!(!state.roll(FaultSite::Divergence));
        assert_eq!(state.drawn(FaultSite::Divergence), 0);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan {
            seed: 3,
            panic_rate: 0.5,
            drop_rate: 0.5,
            ..FaultPlan::default()
        };
        let state = FaultState::new(plan);
        let panics: Vec<bool> = (0..256)
            .map(|_| state.roll(FaultSite::WorkerPanic))
            .collect();
        let drops: Vec<bool> = (0..256).map(|_| state.roll(FaultSite::ConnDrop)).collect();
        assert_ne!(panics, drops, "sites must not share a stream");
        let _ = FaultSite::ALL; // all sites are addressable
    }
}
