//! Worker supervision: respawn solver workers that die to a panic.
//!
//! Workers follow let-it-crash: a panic that reaches the worker guard is
//! converted into typed [`WorkerPanic`](crate::EngineError::WorkerPanic)
//! replies for every attached waiter, and the worker thread then exits
//! after posting a death notice here. The supervisor respawns it in the
//! same slot — up to [`restart_budget`](crate::engine::ResilienceConfig::
//! restart_budget) times — keeping the pool at full strength under
//! injected or real solver panics. Every respawn increments
//! `share_worker_restarts_total`.

use crate::engine::{Job, Shared};
use crate::worker::worker_loop;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tracing target of the supervision events.
const TARGET: &str = "share_engine::supervisor";

/// Messages from workers (and the engine) to the supervisor.
pub(crate) enum SupervisorMsg {
    /// The worker in this slot died to a panic and needs a replacement.
    WorkerDied(usize),
    /// The engine is shutting down; stop supervising.
    Shutdown,
}

/// Spawn one worker thread for `slot`.
pub(crate) fn spawn_worker(
    shared: &Arc<Shared>,
    job_rx: &Receiver<Job>,
    sup_tx: &Sender<SupervisorMsg>,
    slot: usize,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let rx = job_rx.clone();
    let sup_tx = sup_tx.clone();
    std::thread::Builder::new()
        .name(format!("share-engine-worker-{slot}"))
        .spawn(move || worker_loop(&shared, &rx, slot, &sup_tx))
}

/// Supervisor thread body: replace dead workers until told to stop or the
/// restart budget runs dry.
pub(crate) fn supervisor_loop(
    shared: &Arc<Shared>,
    job_rx: &Receiver<Job>,
    sup_rx: &Receiver<SupervisorMsg>,
    sup_tx: &Sender<SupervisorMsg>,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let budget = shared.config.resilience.restart_budget;
    let mut restarts = 0usize;
    while let Ok(msg) = sup_rx.recv() {
        let slot = match msg {
            SupervisorMsg::Shutdown => break,
            SupervisorMsg::WorkerDied(slot) => slot,
        };
        if shared.closed.load(Ordering::SeqCst) {
            continue;
        }
        if restarts >= budget {
            share_obs::obs_warn!(
                target: TARGET,
                "restart_budget_exhausted",
                "slot" => slot,
                "budget" => budget
            );
            continue;
        }
        restarts += 1;
        match spawn_worker(shared, job_rx, sup_tx, slot) {
            Ok(h) => {
                shared.metrics.inc_worker_restarts();
                share_obs::obs_info!(
                    target: TARGET,
                    "worker_respawned",
                    "slot" => slot,
                    "restarts" => restarts
                );
                handles.lock().push(h);
            }
            Err(e) => {
                // Thread creation failed (OS resources); the pool shrinks
                // by one but the engine stays up.
                share_obs::obs_warn!(
                    target: TARGET,
                    "worker_respawn_failed",
                    "slot" => slot,
                    "error" => e.to_string()
                );
            }
        }
    }
}
