//! Parameter quantization: mapping near-identical markets to one cache key.
//!
//! Two requests whose parameters differ by less than the configured
//! tolerance describe markets whose equilibria are indistinguishable at
//! serving precision, so the engine buckets every continuous parameter into
//! `round(x / param_tol)` and uses the bucket vector as the cache/dedup key.
//!
//! **Soundness contract** (checked by the crate's property tests): if two
//! parameter sets map to the same [`CacheKey`] under `param_tol`, each
//! continuous field differs by at most `param_tol`, and the resulting SNE
//! prices `(p^M*, p^D*)` differ by less than [`QuantizerConfig::price_tol`].
//! The defaults (`param_tol = 1e-6`, `price_tol = 1e-3`) leave three orders
//! of magnitude of headroom for the solver's parameter sensitivity.

use crate::spec::SolveMode;
use serde::{Deserialize, Serialize};
use share_market::params::{LossModel, MarketParams};

/// Quantization tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizerConfig {
    /// Bucket width for every continuous market parameter.
    pub param_tol: f64,
    /// Guaranteed bound on the SNE price difference between two markets
    /// sharing a key (documented contract; see the crate property tests).
    pub price_tol: f64,
}

impl Default for QuantizerConfig {
    fn default() -> Self {
        Self {
            param_tol: 1e-6,
            price_tol: 1e-3,
        }
    }
}

/// A quantized market identity: solver mode, discrete fields, and the bucket
/// indices of every continuous parameter.
///
/// Serializable so warm cache shards can be snapshotted to disk and
/// restored by a respawned node (see the engine's snapshot hooks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    mode: SolveMode,
    loss_model: LossModel,
    n_pieces: usize,
    buckets: Vec<i64>,
}

impl CacheKey {
    /// Seller count encoded in this key (each seller contributes a λ and an
    /// ω bucket after the 11 buyer/broker buckets), or `None` for a
    /// malformed key with fewer than the 11 fixed buckets. An earlier
    /// version subtracted unchecked and panicked on underflow.
    pub fn m(&self) -> Option<usize> {
        self.buckets
            .len()
            .checked_sub(11)
            .map(|sellers| sellers / 2)
    }

    /// A hash of this key that is stable across processes, builds and
    /// compiler releases — unlike `std`'s `DefaultHasher`, whose SipHash
    /// keys are unspecified. The cluster tier's consistent-hash ring uses
    /// this value to assign keyspace ownership, so two routers (or a
    /// router and a test) must agree on it byte-for-byte.
    ///
    /// FNV-1a over a canonical field encoding, finished with a splitmix64
    /// avalanche so nearby bucket vectors still scatter across the ring.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mode_tag: u8 = match self.mode {
            SolveMode::Direct => 0,
            SolveMode::MeanField => 1,
            SolveMode::Numeric => 2,
        };
        let loss_tag: u8 = match self.loss_model {
            LossModel::Quadratic => 0,
            LossModel::LinearChi => 1,
        };
        eat(&[mode_tag, loss_tag]);
        eat(&(self.n_pieces as u64).to_le_bytes());
        eat(&(self.buckets.len() as u64).to_le_bytes());
        for &b in &self.buckets {
            eat(&b.to_le_bytes());
        }
        // splitmix64 finalizer.
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for CacheKey {
    /// An empty key whose bucket vector can be filled in place by
    /// [`quantize_into`]. Never equal to any key `quantize` produces (those
    /// always carry ≥ 11 buckets).
    fn default() -> Self {
        Self {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 0,
            buckets: Vec::new(),
        }
    }
}

fn bucket(x: f64, tol: f64) -> i64 {
    // `as` saturates on overflow/NaN, so extreme values still yield a
    // deterministic (if degenerate) key rather than UB.
    (x / tol).round() as i64
}

/// Quantize a validated market + solver mode into its [`CacheKey`].
pub fn quantize(params: &MarketParams, mode: SolveMode, tol: f64) -> CacheKey {
    let mut key = CacheKey {
        mode,
        loss_model: params.loss_model,
        n_pieces: params.buyer.n_pieces,
        buckets: Vec::with_capacity(11 + 2 * params.m()),
    };
    fill_buckets(params, tol, &mut key.buckets);
    key
}

/// [`quantize`] writing into a caller-owned key, reusing its bucket
/// allocation. The serving engine's per-connection hit scratch probes the
/// warm cache through this so steady-state cache hits never allocate.
pub fn quantize_into(params: &MarketParams, mode: SolveMode, tol: f64, key: &mut CacheKey) {
    key.mode = mode;
    key.loss_model = params.loss_model;
    key.n_pieces = params.buyer.n_pieces;
    key.buckets.clear();
    fill_buckets(params, tol, &mut key.buckets);
}

fn fill_buckets(params: &MarketParams, tol: f64, buckets: &mut Vec<i64>) {
    let b = &params.buyer;
    for x in [b.v, b.theta1, b.theta2, b.rho1, b.rho2] {
        buckets.push(bucket(x, tol));
    }
    for s in params.broker.sigma {
        buckets.push(bucket(s, tol));
    }
    for s in &params.sellers {
        buckets.push(bucket(s.lambda, tol));
    }
    for &w in &params.weights {
        buckets.push(bucket(w, tol));
    }
}

/// Bucket-coarsening factor for the warm-start hint index: hint keys use
/// `param_tol × 256`, so markets that are merely *near* each other (any
/// parameter within ~2.5e-4 under the default `param_tol = 1e-6`) share a
/// hint slot. The quantizer's soundness contract scales linearly in the
/// tolerance, so neighbors under the coarse key have SNE prices within
/// `256 × price_tol` of each other — far inside the warm solver's
/// `[0.5·hint, 1.5·hint]` search bracket.
pub const HINT_COARSENING: f64 = 256.0;

/// The coarse neighborhood key used to index warm-start hints: identical to
/// [`quantize`] but at `tol × HINT_COARSENING`, so a solved equilibrium can
/// seed every nearby market's numeric solve.
pub fn coarse_hint_key(params: &MarketParams, mode: SolveMode, tol: f64) -> CacheKey {
    quantize(params, mode, tol * HINT_COARSENING)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn identical_markets_share_a_key() {
        let p = market(10, 3);
        let a = quantize(&p, SolveMode::Direct, 1e-6);
        let b = quantize(&p.clone(), SolveMode::Direct, 1e-6);
        assert_eq!(a, b);
        assert_eq!(a.m(), Some(10));
    }

    #[test]
    fn short_keys_report_no_seller_count_instead_of_panicking() {
        // Regression: `m()` underflowed (and panicked) for keys with fewer
        // than the 11 fixed buyer/broker buckets. Such keys cannot come
        // out of `quantize` on a validated market, but a malformed or
        // hand-built key must degrade to `None`, not abort the process.
        let short = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: vec![0; 3],
        };
        assert_eq!(short.m(), None);
        let empty = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: Vec::new(),
        };
        assert_eq!(empty.m(), None);
        // Exactly the fixed buckets: zero sellers, not a panic.
        let fixed_only = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: vec![0; 11],
        };
        assert_eq!(fixed_only.m(), Some(0));
    }

    #[test]
    fn sub_tolerance_perturbations_share_a_key() {
        let mut p = market(10, 3);
        // Pin each λ to the center of a bucket so the nudge below cannot
        // cross a rounding boundary.
        for (i, s) in p.sellers.iter_mut().enumerate() {
            s.lambda = 0.1 + i as f64 * 1e-3;
        }
        let mut q = p.clone();
        for s in &mut q.sellers {
            s.lambda += 1e-9;
        }
        assert_eq!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
    }

    #[test]
    fn distinct_markets_and_modes_get_distinct_keys() {
        let p = market(10, 3);
        let mut q = p.clone();
        q.sellers[0].lambda += 0.1;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&p, SolveMode::Numeric, 1e-6)
        );
        let mut r = p.clone();
        r.buyer.n_pieces += 1;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&r, SolveMode::Direct, 1e-6)
        );
        let mut l = p.clone();
        l.loss_model = LossModel::LinearChi;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&l, SolveMode::Direct, 1e-6)
        );
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        let p = market(10, 3);
        let a = quantize(&p, SolveMode::Direct, 1e-6);
        let b = quantize(&p.clone(), SolveMode::Direct, 1e-6);
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(
            a.stable_hash(),
            quantize(&p, SolveMode::Numeric, 1e-6).stable_hash()
        );
        let mut q = p.clone();
        q.sellers[0].lambda += 0.1;
        assert_ne!(
            a.stable_hash(),
            quantize(&q, SolveMode::Direct, 1e-6).stable_hash()
        );
    }

    #[test]
    fn stable_hash_matches_pinned_golden_value() {
        // The ring protocol depends on this value being identical in every
        // process that computes it. If this test breaks, the hash changed
        // and rolling upgrades of a cluster would split keyspace ownership.
        let key = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: vec![1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, 12, -13],
        };
        assert_eq!(key.stable_hash(), GOLDEN_STABLE_HASH);
    }

    /// Pinned output of `stable_hash` for the key above; computed once and
    /// frozen. Do not "fix" this constant to make the test pass — a
    /// mismatch means the wire-level ownership function changed.
    const GOLDEN_STABLE_HASH: u64 = 0xc8c7_3169_a453_fe8d;

    #[test]
    fn serde_round_trip_preserves_key_and_hash() {
        let p = market(6, 9);
        let key = quantize(&p, SolveMode::MeanField, 1e-6);
        let json = serde_json::to_string(&key).expect("serialize");
        let back: CacheKey = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(key, back);
        assert_eq!(key.stable_hash(), back.stable_hash());
    }

    #[test]
    fn quantize_into_matches_quantize_and_reuses_buffers() {
        let p = market(10, 3);
        let q = market(4, 7);
        let mut key = CacheKey::default();
        quantize_into(&p, SolveMode::Numeric, 1e-6, &mut key);
        assert_eq!(key, quantize(&p, SolveMode::Numeric, 1e-6));
        // Reuse across a market of a different size must not leak buckets.
        quantize_into(&q, SolveMode::Direct, 1e-6, &mut key);
        assert_eq!(key, quantize(&q, SolveMode::Direct, 1e-6));
        assert_eq!(key.m(), Some(4));
    }

    #[test]
    fn coarse_hint_key_groups_neighbors_that_fine_keys_separate() {
        let mut p = market(8, 5);
        p.sellers[0].lambda = 0.25;
        let mut q = p.clone();
        q.sellers[0].lambda += 40.0 * 1e-6; // 40 fine buckets apart
        let tol = 1e-6;
        assert_ne!(
            quantize(&p, SolveMode::Numeric, tol),
            quantize(&q, SolveMode::Numeric, tol)
        );
        assert_eq!(
            coarse_hint_key(&p, SolveMode::Numeric, tol),
            coarse_hint_key(&q, SolveMode::Numeric, tol)
        );
    }

    #[test]
    fn coarser_tolerance_coalesces_more() {
        let mut p = market(5, 1);
        // Bucket-centered so the 1e-4 nudge stays inside one 1e-2 bucket.
        p.sellers[0].lambda = 0.25;
        let mut q = p.clone();
        q.sellers[0].lambda += 1e-4;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
        assert_eq!(
            quantize(&p, SolveMode::Direct, 1e-2),
            quantize(&q, SolveMode::Direct, 1e-2)
        );
    }
}
