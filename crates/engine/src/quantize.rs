//! Parameter quantization: mapping near-identical markets to one cache key.
//!
//! Two requests whose parameters differ by less than the configured
//! tolerance describe markets whose equilibria are indistinguishable at
//! serving precision, so the engine buckets every continuous parameter into
//! `round(x / param_tol)` and uses the bucket vector as the cache/dedup key.
//!
//! **Soundness contract** (checked by the crate's property tests): if two
//! parameter sets map to the same [`CacheKey`] under `param_tol`, each
//! continuous field differs by at most `param_tol`, and the resulting SNE
//! prices `(p^M*, p^D*)` differ by less than [`QuantizerConfig::price_tol`].
//! The defaults (`param_tol = 1e-6`, `price_tol = 1e-3`) leave three orders
//! of magnitude of headroom for the solver's parameter sensitivity.

use crate::spec::SolveMode;
use share_market::params::{LossModel, MarketParams};

/// Quantization tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizerConfig {
    /// Bucket width for every continuous market parameter.
    pub param_tol: f64,
    /// Guaranteed bound on the SNE price difference between two markets
    /// sharing a key (documented contract; see the crate property tests).
    pub price_tol: f64,
}

impl Default for QuantizerConfig {
    fn default() -> Self {
        Self {
            param_tol: 1e-6,
            price_tol: 1e-3,
        }
    }
}

/// A quantized market identity: solver mode, discrete fields, and the bucket
/// indices of every continuous parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    mode: SolveMode,
    loss_model: LossModel,
    n_pieces: usize,
    buckets: Vec<i64>,
}

impl CacheKey {
    /// Seller count encoded in this key (each seller contributes a λ and an
    /// ω bucket after the 11 buyer/broker buckets), or `None` for a
    /// malformed key with fewer than the 11 fixed buckets. An earlier
    /// version subtracted unchecked and panicked on underflow.
    pub fn m(&self) -> Option<usize> {
        self.buckets
            .len()
            .checked_sub(11)
            .map(|sellers| sellers / 2)
    }
}

fn bucket(x: f64, tol: f64) -> i64 {
    // `as` saturates on overflow/NaN, so extreme values still yield a
    // deterministic (if degenerate) key rather than UB.
    (x / tol).round() as i64
}

/// Quantize a validated market + solver mode into its [`CacheKey`].
pub fn quantize(params: &MarketParams, mode: SolveMode, tol: f64) -> CacheKey {
    let mut buckets = Vec::with_capacity(11 + 2 * params.m());
    let b = &params.buyer;
    for x in [b.v, b.theta1, b.theta2, b.rho1, b.rho2] {
        buckets.push(bucket(x, tol));
    }
    for s in params.broker.sigma {
        buckets.push(bucket(s, tol));
    }
    for s in &params.sellers {
        buckets.push(bucket(s.lambda, tol));
    }
    for &w in &params.weights {
        buckets.push(bucket(w, tol));
    }
    CacheKey {
        mode,
        loss_model: params.loss_model,
        n_pieces: b.n_pieces,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(m: usize, seed: u64) -> MarketParams {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketParams::paper_defaults(m, &mut rng)
    }

    #[test]
    fn identical_markets_share_a_key() {
        let p = market(10, 3);
        let a = quantize(&p, SolveMode::Direct, 1e-6);
        let b = quantize(&p.clone(), SolveMode::Direct, 1e-6);
        assert_eq!(a, b);
        assert_eq!(a.m(), Some(10));
    }

    #[test]
    fn short_keys_report_no_seller_count_instead_of_panicking() {
        // Regression: `m()` underflowed (and panicked) for keys with fewer
        // than the 11 fixed buyer/broker buckets. Such keys cannot come
        // out of `quantize` on a validated market, but a malformed or
        // hand-built key must degrade to `None`, not abort the process.
        let short = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: vec![0; 3],
        };
        assert_eq!(short.m(), None);
        let empty = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: Vec::new(),
        };
        assert_eq!(empty.m(), None);
        // Exactly the fixed buckets: zero sellers, not a panic.
        let fixed_only = CacheKey {
            mode: SolveMode::Direct,
            loss_model: LossModel::Quadratic,
            n_pieces: 500,
            buckets: vec![0; 11],
        };
        assert_eq!(fixed_only.m(), Some(0));
    }

    #[test]
    fn sub_tolerance_perturbations_share_a_key() {
        let mut p = market(10, 3);
        // Pin each λ to the center of a bucket so the nudge below cannot
        // cross a rounding boundary.
        for (i, s) in p.sellers.iter_mut().enumerate() {
            s.lambda = 0.1 + i as f64 * 1e-3;
        }
        let mut q = p.clone();
        for s in &mut q.sellers {
            s.lambda += 1e-9;
        }
        assert_eq!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
    }

    #[test]
    fn distinct_markets_and_modes_get_distinct_keys() {
        let p = market(10, 3);
        let mut q = p.clone();
        q.sellers[0].lambda += 0.1;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&p, SolveMode::Numeric, 1e-6)
        );
        let mut r = p.clone();
        r.buyer.n_pieces += 1;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&r, SolveMode::Direct, 1e-6)
        );
        let mut l = p.clone();
        l.loss_model = LossModel::LinearChi;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&l, SolveMode::Direct, 1e-6)
        );
    }

    #[test]
    fn coarser_tolerance_coalesces_more() {
        let mut p = market(5, 1);
        // Bucket-centered so the 1e-4 nudge stays inside one 1e-2 bucket.
        p.sellers[0].lambda = 0.25;
        let mut q = p.clone();
        q.sellers[0].lambda += 1e-4;
        assert_ne!(
            quantize(&p, SolveMode::Direct, 1e-6),
            quantize(&q, SolveMode::Direct, 1e-6)
        );
        assert_eq!(
            quantize(&p, SolveMode::Direct, 1e-2),
            quantize(&q, SolveMode::Direct, 1e-2)
        );
    }
}
