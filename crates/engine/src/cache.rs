//! Equilibrium caches: a small single-threaded LRU plus the sharded
//! concurrent cache the engine serves from.
//!
//! [`LruCache`] is a capacity-bounded map with least-recently-used
//! eviction. Recency is a monotonic tick bumped on every hit and insert
//! (misses leave it untouched); eviction scans for the minimum tick, which
//! is O(capacity) but irrelevant next to a solve (a shard holds at most a
//! few thousand entries and eviction happens once per insertion).
//!
//! [`ShardedCache`] hash-partitions keys across `N` independently locked
//! LRU shards so concurrent submission threads and workers contend only
//! when they touch the same shard, instead of serializing on one global
//! mutex. Shard choice is deterministic (`SipHash` with fixed keys), so a
//! key always lands on the same shard and per-shard LRU order is exactly
//! the single-cache order restricted to that shard.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

struct Entry<V> {
    value: V,
    tick: u64,
}

/// Least-recently-used cache with a fixed capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit. A miss leaves the
    /// recency tick untouched: an earlier version bumped it on every
    /// lookup, so miss-heavy traffic burned through tick space without
    /// changing any entry's relative order.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get_mut(key) {
            Some(e) => {
                self.tick += 1;
                e.tick = self.tick;
                Some(e.value.clone())
            }
            None => None,
        }
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        let tick = self.tick;
        self.map.insert(key, Entry { value, tick });
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Every resident entry, least-recently-used first. Re-inserting the
    /// returned pairs in order into an empty cache reproduces both the
    /// contents and the relative recency order (snapshot format contract).
    pub fn export(&self) -> Vec<(K, V)> {
        let mut entries: Vec<(&K, &Entry<V>)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.tick);
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect()
    }
}

/// A concurrent LRU cache: keys are hash-partitioned across independently
/// locked [`LruCache`] shards.
///
/// The total capacity is split evenly across shards (each shard gets
/// `ceil(capacity / shards)`, minimum 1), so a pathological key
/// distribution can evict slightly earlier than a single cache of the
/// same capacity would — the price of lock-splitting the hot path.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Create a cache of `capacity` total entries split across `shards`
    /// independently locked LRU shards (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    /// The shard `key` deterministically lands on.
    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up `key`, refreshing its recency within its shard on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key)
    }

    /// Insert (or overwrite) `key`, evicting its shard's least-recently-
    /// used entry if that shard is full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Total resident entries across all shards. Takes the shard locks one
    /// at a time, so the sum is a consistent-enough snapshot, not an
    /// atomic one.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Resident entries per shard, in shard order (for stats and tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }

    /// Every resident entry across all shards, each shard's slice ordered
    /// least-recently-used first. Shard locks are taken one at a time, so
    /// concurrent writers may be partially reflected — acceptable for the
    /// snapshot-on-drain path, which runs after serving has stopped.
    pub fn export(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().export());
        }
        out
    }

    /// Re-insert snapshot `entries` (shard choice is recomputed, so a
    /// snapshot taken under one shard count restores correctly under
    /// another). Returns the number of entries inserted; capacity limits
    /// still apply, so an oversized snapshot silently keeps only the most
    /// recently inserted slice of each shard.
    pub fn restore<I: IntoIterator<Item = (K, V)>>(&self, entries: I) -> usize {
        let mut n = 0;
        for (k, v) in entries {
            self.insert(k, v);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so that 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.insert(2, 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn misses_do_not_advance_recency() {
        // Regression: `get` used to bump the tick on misses too, so a
        // miss-heavy interleaving burned tick space between legitimate
        // recency updates. Eviction order must be driven by hits and
        // inserts alone, no matter how many misses land in between.
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 is LRU, then hammer misses.
        assert_eq!(c.get(&1), Some(10));
        for probe in 100..1100 {
            assert_eq!(c.get(&probe), None);
        }
        // After 1000 interleaved misses, inserting a new key must still
        // evict 2 (the least recently *hit* entry), not 1.
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry must be evicted after misses");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn export_orders_by_recency_and_round_trips() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(10)); // 1 becomes most recent
        let exported = c.export();
        assert_eq!(exported, vec![(2, 20), (3, 30), (1, 10)]);

        // Re-inserting in order reproduces eviction behavior: 2 is still
        // the LRU entry in the restored cache.
        let mut r: LruCache<u32, u32> = LruCache::new(3);
        for (k, v) in exported {
            r.insert(k, v);
        }
        r.insert(4, 40);
        assert_eq!(r.get(&2), None, "restored LRU entry evicted first");
        assert_eq!(r.get(&1), Some(10));
    }

    #[test]
    fn sharded_export_restore_round_trips_across_shard_counts() {
        let a: ShardedCache<u64, u64> = ShardedCache::new(256, 8);
        for k in 0..100u64 {
            a.insert(k, k * 3);
        }
        let snapshot = a.export();
        assert_eq!(snapshot.len(), 100);

        // Restore into a cache with a different shard count.
        let b: ShardedCache<u64, u64> = ShardedCache::new(256, 3);
        assert_eq!(b.restore(snapshot), 100);
        assert_eq!(b.len(), 100);
        for k in 0..100u64 {
            assert_eq!(b.get(&k), Some(k * 3), "key {k} lost in restore");
        }
    }

    #[test]
    fn sharded_basic_hit_miss_len() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(64, 8);
        assert!(c.is_empty());
        assert_eq!(c.shards(), 8);
        for k in 0..32 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.len(), 32);
        for k in 0..32 {
            assert_eq!(c.get(&k), Some(k * 10));
        }
        assert_eq!(c.get(&999), None);
        assert_eq!(c.shard_lens().iter().sum::<usize>(), 32);
    }

    #[test]
    fn sharded_clamps_degenerate_config() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0, 0);
        assert_eq!(c.shards(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1, "capacity 0 clamps to 1 entry");
    }

    #[test]
    fn sharded_capacity_splits_across_shards() {
        // 4 shards × ceil(8/4) = 2 entries per shard. Whatever the key
        // distribution, no shard exceeds its slice and the total stays
        // within shards × per-shard capacity.
        let c: ShardedCache<u32, u32> = ShardedCache::new(8, 4);
        for k in 0..1000 {
            c.insert(k, k);
        }
        assert!(c.len() <= 8, "len {} exceeds total capacity", c.len());
        for (i, len) in c.shard_lens().into_iter().enumerate() {
            assert!(len <= 2, "shard {i} holds {len} > 2 entries");
        }
    }

    #[test]
    fn sharded_same_key_same_shard() {
        // Overwrites must land on the resident entry, not a second shard.
        let c: ShardedCache<u64, u64> = ShardedCache::new(100, 16);
        for round in 0..5u64 {
            for k in 0..20u64 {
                c.insert(k, k + round);
            }
        }
        assert_eq!(c.len(), 20);
        for k in 0..20u64 {
            assert_eq!(c.get(&k), Some(k + 4));
        }
    }
}
