//! A small LRU cache for solved equilibria.
//!
//! Capacity-bounded map with least-recently-used eviction. Recency is a
//! monotonic tick bumped on every hit; eviction scans for the minimum tick,
//! which is O(capacity) but irrelevant next to a solve (the cache holds at
//! most a few thousand entries and eviction happens once per insertion).

use std::collections::HashMap;
use std::hash::Hash;

struct Entry<V> {
    value: V,
    tick: u64,
}

/// Least-recently-used cache with a fixed capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.tick = tick;
            e.value.clone()
        })
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        let tick = self.tick;
        self.map.insert(key, Entry { value, tick });
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so that 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.insert(2, 20);
        assert_eq!(c.len(), 1);
    }
}
