//! Newline-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object on one line, tagged by a
//! `kind` field and correlated by a client-chosen `id` (defaulting to 0).
//! Responses to pipelined requests may arrive out of submission order —
//! clients must match on `id`.
//!
//! ```text
//! → {"kind":"solve","id":1,"spec":{"m":100,"seed":42},"mode":"direct"}
//! ← {"id":1,"kind":"solve","result":{"p_m":0.036,...,"cached":false}}
//! → {"kind":"batch","id":2,"requests":[{"spec":{"m":10,"seed":1}},{"spec":{"m":20,"seed":2}}]}
//! ← {"id":2,"kind":"batch","results":[...]}
//! → {"kind":"stats","id":3}
//! ← {"id":3,"kind":"stats","stats":{"requests":3,...}}
//! → {"kind":"shutdown","id":4}
//! ← {"id":4,"kind":"shutdown"}
//! ```

use crate::engine::{NodeInfo, Reply, SolveSummary};
use crate::error::EngineError;
use crate::metrics::StatsSnapshot;
use crate::spec::{MarketSpec, SolveMode, SolveSpec};
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id (echoed on the response).
    #[serde(default)]
    pub id: u64,
    /// The request payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: RequestBody,
}

/// Request payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RequestBody {
    /// Solve one market.
    Solve {
        /// The market to solve.
        spec: MarketSpec,
        /// Solver path (defaults to `direct`).
        #[serde(default)]
        mode: SolveMode,
        /// Optional deadline in milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deadline_ms: Option<u64>,
    },
    /// Solve several markets; the response carries one result per entry,
    /// in order.
    Batch {
        /// The sub-requests.
        requests: Vec<SolveSpec>,
    },
    /// Fetch the engine's metrics snapshot.
    Stats,
    /// Fetch the full Prometheus text exposition (format 0.0.4).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Fetch this engine process's cluster identity and cache occupancy.
    NodeInfo,
    /// Ask the engine to write its warm-cache snapshot to the configured
    /// path now (normally written automatically on graceful shutdown).
    Snapshot,
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// The response payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: ResponseBody,
}

/// Response payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ResponseBody {
    /// A solved (or cache-served) equilibrium.
    Solve {
        /// The equilibrium summary.
        result: SolveSummary,
    },
    /// A batch of results, ordered as submitted (each inner response keeps
    /// its position as `id`).
    Batch {
        /// Per-entry responses.
        results: Vec<WireResponse>,
    },
    /// Metrics snapshot.
    Stats {
        /// The counters.
        stats: StatsSnapshot,
    },
    /// Prometheus text exposition (format 0.0.4).
    Metrics {
        /// The exposition body.
        text: String,
    },
    /// Reply to a ping.
    Pong,
    /// Node identity and cache occupancy.
    NodeInfo {
        /// The reporting process's identity.
        info: NodeInfo,
    },
    /// Acknowledgement of a snapshot request.
    Snapshot {
        /// Cache entries written (0 when no snapshot path is configured).
        entries: usize,
    },
    /// Acknowledgement of a shutdown request.
    Shutdown,
    /// A structured error.
    Error {
        /// Stable machine-readable code (see [`EngineError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
        /// Back-off hint carried by `overloaded` (shed) errors, absent on
        /// every other code and on replies from older servers.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        retry_after_ms: Option<u64>,
    },
}

impl WireResponse {
    /// Build the wire form of an engine error.
    pub fn from_error(id: u64, error: &EngineError) -> Self {
        Self {
            id,
            body: ResponseBody::Error {
                code: error.code().to_string(),
                message: error.to_string(),
                retry_after_ms: error.retry_after_ms(),
            },
        }
    }

    /// Build the wire form of an engine reply.
    pub fn from_reply(reply: Reply) -> Self {
        match reply.result {
            Ok(result) => Self {
                id: reply.id,
                body: ResponseBody::Solve { result },
            },
            Err(e) => Self::from_error(reply.id, &e),
        }
    }

    /// `true` unless this is an error response.
    pub fn is_ok(&self) -> bool {
        !matches!(self.body, ResponseBody::Error { .. })
    }
}

/// Parse one request line.
///
/// # Errors
/// [`EngineError::InvalidRequest`] on malformed JSON or an unknown `kind`.
pub fn parse_request(line: &str) -> crate::error::Result<WireRequest> {
    serde_json::from_str(line).map_err(|e| EngineError::InvalidRequest(e.to_string()))
}

/// Encode one response as its wire line (without the trailing newline).
///
/// Serialization cannot fail for the types in [`ResponseBody`] (serde_json
/// maps non-finite floats to `null`), but a connection thread must never
/// panic on output either — an impossible failure degrades to a literal
/// `internal` error line carrying the same id.
pub fn encode_response(resp: &WireResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| {
        format!(
            r#"{{"id":{},"kind":"error","code":"internal","message":"response failed to serialize"}}"#,
            resp.id
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_roundtrip() {
        let line = r#"{"kind":"solve","id":7,"spec":{"m":10,"seed":1},"mode":"numeric","deadline_ms":250}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, 7);
        match &req.body {
            RequestBody::Solve {
                spec,
                mode,
                deadline_ms,
            } => {
                assert!(matches!(spec, MarketSpec::Seeded { m: 10, seed: 1, .. }));
                assert_eq!(*mode, SolveMode::Numeric);
                assert_eq!(*deadline_ms, Some(250));
            }
            other => panic!("wrong body: {other:?}"),
        }
        let encoded = serde_json::to_string(&req).unwrap();
        let back = parse_request(&encoded).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unit_kinds_parse_and_default_id() {
        for (line, want) in [
            (r#"{"kind":"stats"}"#, RequestBody::Stats),
            (r#"{"kind":"metrics"}"#, RequestBody::Metrics),
            (r#"{"kind":"ping"}"#, RequestBody::Ping),
            (r#"{"kind":"node_info"}"#, RequestBody::NodeInfo),
            (r#"{"kind":"snapshot"}"#, RequestBody::Snapshot),
            (r#"{"kind":"shutdown"}"#, RequestBody::Shutdown),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(req.id, 0);
            assert_eq!(req.body, want);
        }
    }

    #[test]
    fn malformed_lines_are_invalid_requests() {
        assert!(matches!(
            parse_request("{not json"),
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"frobnicate","id":1}"#),
            Err(EngineError::InvalidRequest(_))
        ));
    }

    #[test]
    fn error_response_carries_stable_code() {
        let resp = WireResponse::from_error(3, &EngineError::Overloaded { retry_after_ms: 40 });
        assert!(!resp.is_ok());
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"overloaded""#), "{line}");
        assert!(line.contains(r#""retry_after_ms":40"#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn non_shed_errors_omit_the_retry_hint() {
        let resp = WireResponse::from_error(1, &EngineError::WorkerPanic("boom".into()));
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"worker_panic""#), "{line}");
        assert!(!line.contains("retry_after_ms"), "{line}");
        // Error lines from pre-fault-tolerance servers (no hint field)
        // still deserialize.
        let legacy = r#"{"id":2,"kind":"error","code":"overloaded","message":"full"}"#;
        let back: WireResponse = serde_json::from_str(legacy).unwrap();
        match back.body {
            ResponseBody::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, None),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn node_info_response_roundtrip() {
        let resp = WireResponse {
            id: 4,
            body: ResponseBody::NodeInfo {
                info: NodeInfo {
                    node_id: "n1".to_string(),
                    cache_entries: 12,
                    cache_shards: 8,
                    workers: 2,
                    requests: 99,
                    snapshot_path: Some("/tmp/n1.snap".to_string()),
                },
            },
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""kind":"node_info""#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn batch_request_roundtrip() {
        let line = r#"{"kind":"batch","id":9,"requests":[{"spec":{"m":3,"seed":1}},{"spec":{"m":4,"seed":2},"mode":"mean_field"}]}"#;
        let req = parse_request(line).unwrap();
        match &req.body {
            RequestBody::Batch { requests } => {
                assert_eq!(requests.len(), 2);
                assert_eq!(requests[1].mode, SolveMode::MeanField);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }
}
