//! Newline-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object on one line, tagged by a
//! `kind` field and correlated by a client-chosen `id` (defaulting to 0).
//! Responses to pipelined requests may arrive out of submission order —
//! clients must match on `id`.
//!
//! ```text
//! → {"kind":"solve","id":1,"spec":{"m":100,"seed":42},"mode":"direct"}
//! ← {"id":1,"kind":"solve","result":{"p_m":0.036,...,"cached":false}}
//! → {"kind":"batch","id":2,"requests":[{"spec":{"m":10,"seed":1}},{"spec":{"m":20,"seed":2}}]}
//! ← {"id":2,"kind":"batch","results":[...]}
//! → {"kind":"stats","id":3}
//! ← {"id":3,"kind":"stats","stats":{"requests":3,...}}
//! → {"kind":"shutdown","id":4}
//! ← {"id":4,"kind":"shutdown"}
//! ```

use crate::engine::{NodeInfo, Reply, SolveSummary};
use crate::error::EngineError;
use crate::metrics::StatsSnapshot;
use crate::spec::{MarketSpec, SolveMode, SolveSpec};
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id (echoed on the response).
    #[serde(default)]
    pub id: u64,
    /// Optional distributed-tracing context in
    /// [`share_obs::TraceContext`] wire form
    /// (`<trace_id>-<span_id>-<flags>`, hex). Absent → the request is
    /// untraced at this hop (routers mint a fresh context).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// The request payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: RequestBody,
}

/// Request payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RequestBody {
    /// Solve one market.
    Solve {
        /// The market to solve.
        spec: MarketSpec,
        /// Solver path (defaults to `direct`).
        #[serde(default)]
        mode: SolveMode,
        /// Optional deadline in milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deadline_ms: Option<u64>,
    },
    /// Solve several markets; the response carries one result per entry,
    /// in order.
    Batch {
        /// The sub-requests.
        requests: Vec<SolveSpec>,
    },
    /// Fetch the engine's metrics snapshot.
    Stats,
    /// Fetch the full Prometheus text exposition (format 0.0.4).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Fetch this engine process's cluster identity and cache occupancy.
    NodeInfo,
    /// Ask the engine to write its warm-cache snapshot to the configured
    /// path now (normally written automatically on graceful shutdown).
    Snapshot,
    /// Fetch kept traces from the tail-sampled trace ring: one by id, or
    /// the N slowest. Routers merge their own spans with every healthy
    /// peer's, so one request returns the cross-node waterfall.
    Trace {
        /// A 32-hex-digit trace id to fetch.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// Return the N slowest kept traces instead (by hop-root
        /// duration, descending). Ignored when `trace_id` is set.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        slowest: Option<usize>,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Echo of the trace context this hop recorded under (wire form),
    /// so callers learn the trace id of router-minted traces. Absent on
    /// untraced requests.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// The response payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: ResponseBody,
}

/// Response payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ResponseBody {
    /// A solved (or cache-served) equilibrium.
    Solve {
        /// The equilibrium summary.
        result: SolveSummary,
    },
    /// A batch of results, ordered as submitted (each inner response keeps
    /// its position as `id`).
    Batch {
        /// Per-entry responses.
        results: Vec<WireResponse>,
    },
    /// Metrics snapshot.
    Stats {
        /// The counters.
        stats: StatsSnapshot,
    },
    /// Prometheus text exposition (format 0.0.4).
    Metrics {
        /// The exposition body.
        text: String,
    },
    /// Reply to a ping.
    Pong,
    /// Node identity and cache occupancy.
    NodeInfo {
        /// The reporting process's identity.
        info: NodeInfo,
    },
    /// Acknowledgement of a snapshot request.
    Snapshot {
        /// Cache entries written (0 when no snapshot path is configured).
        entries: usize,
    },
    /// Kept traces from the tail-sampled ring.
    Trace {
        /// The matching traces (empty when the id was dropped by the
        /// sampler or aged out).
        traces: Vec<WireTrace>,
    },
    /// Acknowledgement of a shutdown request.
    Shutdown,
    /// A structured error.
    Error {
        /// Stable machine-readable code (see [`EngineError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
        /// Back-off hint carried by `overloaded` (shed) errors, absent on
        /// every other code and on replies from older servers.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        retry_after_ms: Option<u64>,
    },
}

/// One trace on the wire: its id (hex) and every span any queried node
/// kept for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTrace {
    /// 32-hex-digit trace id.
    pub trace_id: String,
    /// The kept spans, in recording order per node.
    pub spans: Vec<WireSpan>,
}

/// Serde mirror of [`share_obs::SpanRecord`] (span ids are u64 — fine as
/// JSON numbers — but the 128-bit trace id rides as hex on [`WireTrace`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpan {
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_span_id: u64,
    /// Span name (`router_recv`, `engine_request`, `solve`, …).
    pub name: String,
    /// Node that recorded the span.
    pub node: String,
    /// Monotonic-anchored unix microseconds at span start.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Cache/degrade/shed/stage annotations.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub annotations: Vec<(String, String)>,
}

impl WireSpan {
    /// Convert a locally recorded span to its wire form.
    pub fn from_record(rec: &share_obs::SpanRecord) -> Self {
        WireSpan {
            span_id: rec.span_id,
            parent_span_id: rec.parent_span_id,
            name: rec.name.clone(),
            node: rec.node.clone(),
            start_us: rec.start_us,
            duration_ns: rec.duration_ns,
            annotations: rec.annotations.clone(),
        }
    }
}

impl WireTrace {
    /// Build the wire form of one kept trace.
    pub fn from_spans(trace_id: u128, spans: &[share_obs::SpanRecord]) -> Self {
        WireTrace {
            trace_id: share_obs::trace::format_trace_id(trace_id),
            spans: spans.iter().map(WireSpan::from_record).collect(),
        }
    }
}

/// Answer a `trace` request from this process's kept-trace ring: the trace
/// named by `trace_id` (if kept), plus the `slowest_n` slowest kept traces.
/// Both servers and the cluster router use this for their local spans.
pub(crate) fn local_trace_response(
    id: u64,
    trace_id: Option<&str>,
    slowest_n: Option<usize>,
) -> WireResponse {
    let mut traces = Vec::new();
    if let Some(tid) = trace_id.and_then(share_obs::trace::parse_trace_id) {
        if let Some(spans) = share_obs::trace::get_trace(tid) {
            traces.push(WireTrace::from_spans(tid, &spans));
        }
    }
    if let Some(n) = slowest_n {
        for (tid, spans) in share_obs::trace::slowest(n) {
            let hex = share_obs::trace::format_trace_id(tid);
            if !traces.iter().any(|t: &WireTrace| t.trace_id == hex) {
                traces.push(WireTrace::from_spans(tid, &spans));
            }
        }
    }
    WireResponse {
        id,
        trace: None,
        body: ResponseBody::Trace { traces },
    }
}

impl WireResponse {
    /// Build the wire form of an engine error.
    pub fn from_error(id: u64, error: &EngineError) -> Self {
        Self {
            id,
            trace: None,
            body: ResponseBody::Error {
                code: error.code().to_string(),
                message: error.to_string(),
                retry_after_ms: error.retry_after_ms(),
            },
        }
    }

    /// Build the wire form of an engine reply, echoing its trace context.
    pub fn from_reply(reply: Reply) -> Self {
        let trace = reply.trace;
        let mut resp = match reply.result {
            Ok(result) => Self {
                id: reply.id,
                trace: None,
                body: ResponseBody::Solve { result },
            },
            Err(e) => Self::from_error(reply.id, &e),
        };
        resp.trace = trace;
        resp
    }

    /// `true` unless this is an error response.
    pub fn is_ok(&self) -> bool {
        !matches!(self.body, ResponseBody::Error { .. })
    }
}

/// Parse one request line.
///
/// # Errors
/// [`EngineError::InvalidRequest`] on malformed JSON or an unknown `kind`.
pub fn parse_request(line: &str) -> crate::error::Result<WireRequest> {
    serde_json::from_str(line).map_err(|e| EngineError::InvalidRequest(e.to_string()))
}

/// Encode one response as its wire line (without the trailing newline).
///
/// Serialization cannot fail for the types in [`ResponseBody`] (serde_json
/// maps non-finite floats to `null`), but a connection thread must never
/// panic on output either — an impossible failure degrades to a literal
/// `internal` error line carrying the same id.
pub fn encode_response(resp: &WireResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| {
        format!(
            r#"{{"id":{},"kind":"error","code":"internal","message":"response failed to serialize"}}"#,
            resp.id
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_roundtrip() {
        let line = r#"{"kind":"solve","id":7,"spec":{"m":10,"seed":1},"mode":"numeric","deadline_ms":250}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, 7);
        match &req.body {
            RequestBody::Solve {
                spec,
                mode,
                deadline_ms,
            } => {
                assert!(matches!(spec, MarketSpec::Seeded { m: 10, seed: 1, .. }));
                assert_eq!(*mode, SolveMode::Numeric);
                assert_eq!(*deadline_ms, Some(250));
            }
            other => panic!("wrong body: {other:?}"),
        }
        let encoded = serde_json::to_string(&req).unwrap();
        let back = parse_request(&encoded).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unit_kinds_parse_and_default_id() {
        for (line, want) in [
            (r#"{"kind":"stats"}"#, RequestBody::Stats),
            (r#"{"kind":"metrics"}"#, RequestBody::Metrics),
            (r#"{"kind":"ping"}"#, RequestBody::Ping),
            (r#"{"kind":"node_info"}"#, RequestBody::NodeInfo),
            (r#"{"kind":"snapshot"}"#, RequestBody::Snapshot),
            (r#"{"kind":"shutdown"}"#, RequestBody::Shutdown),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(req.id, 0);
            assert_eq!(req.body, want);
        }
    }

    #[test]
    fn malformed_lines_are_invalid_requests() {
        assert!(matches!(
            parse_request("{not json"),
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"frobnicate","id":1}"#),
            Err(EngineError::InvalidRequest(_))
        ));
    }

    #[test]
    fn error_response_carries_stable_code() {
        let resp = WireResponse::from_error(3, &EngineError::Overloaded { retry_after_ms: 40 });
        assert!(!resp.is_ok());
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"overloaded""#), "{line}");
        assert!(line.contains(r#""retry_after_ms":40"#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn non_shed_errors_omit_the_retry_hint() {
        let resp = WireResponse::from_error(1, &EngineError::WorkerPanic("boom".into()));
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"worker_panic""#), "{line}");
        assert!(!line.contains("retry_after_ms"), "{line}");
        // Error lines from pre-fault-tolerance servers (no hint field)
        // still deserialize.
        let legacy = r#"{"id":2,"kind":"error","code":"overloaded","message":"full"}"#;
        let back: WireResponse = serde_json::from_str(legacy).unwrap();
        match back.body {
            ResponseBody::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, None),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn node_info_response_roundtrip() {
        let resp = WireResponse {
            id: 4,
            trace: None,
            body: ResponseBody::NodeInfo {
                info: NodeInfo {
                    node_id: "n1".to_string(),
                    cache_entries: 12,
                    cache_shards: 8,
                    workers: 2,
                    requests: 99,
                    snapshot_path: Some("/tmp/n1.snap".to_string()),
                },
            },
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""kind":"node_info""#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn trace_field_roundtrips_and_stays_off_the_wire_when_absent() {
        // Untraced requests/replies must serialize byte-identically to
        // the pre-tracing protocol.
        let req = parse_request(r#"{"kind":"ping","id":1}"#).unwrap();
        assert_eq!(req.trace, None);
        assert!(!serde_json::to_string(&req).unwrap().contains("trace"));
        let resp = WireResponse {
            id: 1,
            trace: None,
            body: ResponseBody::Pong,
        };
        assert!(!encode_response(&resp).contains("trace"));

        let ctx = share_obs::TraceContext {
            trace_id: 0xabcd,
            span_id: 7,
            sampled: true,
        };
        let line = format!(
            r#"{{"kind":"solve","id":2,"trace":"{}","spec":{{"m":5,"seed":1}}}}"#,
            ctx.to_wire()
        );
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req.trace.as_deref().and_then(share_obs::TraceContext::from_wire),
            Some(ctx)
        );
        let encoded = serde_json::to_string(&req).unwrap();
        assert_eq!(parse_request(&encoded).unwrap(), req);
    }

    #[test]
    fn trace_kind_roundtrip() {
        let req = parse_request(r#"{"kind":"trace","id":3,"slowest":2}"#).unwrap();
        assert_eq!(
            req.body,
            RequestBody::Trace {
                trace_id: None,
                slowest: Some(2)
            }
        );
        let by_id = parse_request(&format!(
            r#"{{"kind":"trace","trace_id":"{}"}}"#,
            share_obs::trace::format_trace_id(0xfeed)
        ))
        .unwrap();
        match &by_id.body {
            RequestBody::Trace { trace_id, slowest } => {
                assert_eq!(
                    trace_id.as_deref().and_then(share_obs::trace::parse_trace_id),
                    Some(0xfeed)
                );
                assert_eq!(*slowest, None);
            }
            other => panic!("wrong body: {other:?}"),
        }

        let rec = share_obs::SpanRecord {
            trace_id: 0xfeed,
            span_id: 11,
            parent_span_id: 0,
            name: "router_recv".into(),
            node: "router".into(),
            start_us: 1_000,
            duration_ns: 2_000_000,
            annotations: vec![("cache".into(), "hit".into())],
        };
        let resp = WireResponse {
            id: 3,
            trace: None,
            body: ResponseBody::Trace {
                traces: vec![WireTrace::from_spans(0xfeed, &[rec])],
            },
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""kind":"trace""#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        match back.body {
            ResponseBody::Trace { traces } => {
                assert_eq!(traces[0].spans[0].name, "router_recv");
                assert_eq!(
                    traces[0].spans[0].annotations,
                    vec![("cache".to_string(), "hit".to_string())]
                );
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn reply_trace_echo_survives_both_result_arms() {
        let wire = share_obs::TraceContext {
            trace_id: 1,
            span_id: 2,
            sampled: false,
        }
        .to_wire();
        let err_reply = Reply {
            id: 5,
            trace: Some(wire.clone()),
            result: Err(EngineError::WorkerPanic("boom".into())),
        };
        let resp = WireResponse::from_reply(err_reply);
        assert_eq!(resp.trace, Some(wire.clone()));
        assert!(!resp.is_ok());
        let line = encode_response(&resp);
        assert!(line.contains(&format!(r#""trace":"{wire}""#)), "{line}");
    }

    #[test]
    fn batch_request_roundtrip() {
        let line = r#"{"kind":"batch","id":9,"requests":[{"spec":{"m":3,"seed":1}},{"spec":{"m":4,"seed":2},"mode":"mean_field"}]}"#;
        let req = parse_request(line).unwrap();
        match &req.body {
            RequestBody::Batch { requests } => {
                assert_eq!(requests.len(), 2);
                assert_eq!(requests[1].mode, SolveMode::MeanField);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }
}
