//! Newline-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object on one line, tagged by a
//! `kind` field and correlated by a client-chosen `id` (defaulting to 0).
//! Responses to pipelined requests may arrive out of submission order —
//! clients must match on `id`.
//!
//! ```text
//! → {"kind":"solve","id":1,"spec":{"m":100,"seed":42},"mode":"direct"}
//! ← {"id":1,"kind":"solve","result":{"p_m":0.036,...,"cached":false}}
//! → {"kind":"batch","id":2,"requests":[{"spec":{"m":10,"seed":1}},{"spec":{"m":20,"seed":2}}]}
//! ← {"id":2,"kind":"batch","results":[...]}
//! → {"kind":"stats","id":3}
//! ← {"id":3,"kind":"stats","stats":{"requests":3,...}}
//! → {"kind":"shutdown","id":4}
//! ← {"id":4,"kind":"shutdown"}
//! ```

use crate::engine::{NodeInfo, Reply, SolveSummary};
use crate::error::EngineError;
use crate::metrics::StatsSnapshot;
use crate::spec::{MarketSpec, SolveMode, SolveSpec};
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id (echoed on the response).
    #[serde(default)]
    pub id: u64,
    /// Optional distributed-tracing context in
    /// [`share_obs::TraceContext`] wire form
    /// (`<trace_id>-<span_id>-<flags>`, hex). Absent → the request is
    /// untraced at this hop (routers mint a fresh context).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// The request payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: RequestBody,
}

/// Request payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RequestBody {
    /// Solve one market.
    Solve {
        /// The market to solve.
        spec: MarketSpec,
        /// Solver path (defaults to `direct`).
        #[serde(default)]
        mode: SolveMode,
        /// Optional deadline in milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        deadline_ms: Option<u64>,
    },
    /// Solve several markets; the response carries one result per entry,
    /// in order.
    Batch {
        /// The sub-requests.
        requests: Vec<SolveSpec>,
    },
    /// Fetch the engine's metrics snapshot.
    Stats,
    /// Fetch the full Prometheus text exposition (format 0.0.4).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Fetch this engine process's cluster identity and cache occupancy.
    NodeInfo,
    /// Ask the engine to write its warm-cache snapshot to the configured
    /// path now (normally written automatically on graceful shutdown).
    Snapshot,
    /// Fetch kept traces from the tail-sampled trace ring: one by id, or
    /// the N slowest. Routers merge their own spans with every healthy
    /// peer's, so one request returns the cross-node waterfall.
    Trace {
        /// A 32-hex-digit trace id to fetch.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace_id: Option<String>,
        /// Return the N slowest kept traces instead (by hop-root
        /// duration, descending). Ignored when `trace_id` is set.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        slowest: Option<usize>,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Echo of the trace context this hop recorded under (wire form),
    /// so callers learn the trace id of router-minted traces. Absent on
    /// untraced requests.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// The response payload, tagged by `kind`.
    #[serde(flatten)]
    pub body: ResponseBody,
}

/// Response payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ResponseBody {
    /// A solved (or cache-served) equilibrium.
    Solve {
        /// The equilibrium summary.
        result: SolveSummary,
    },
    /// A batch of results, ordered as submitted (each inner response keeps
    /// its position as `id`).
    Batch {
        /// Per-entry responses.
        results: Vec<WireResponse>,
    },
    /// Metrics snapshot.
    Stats {
        /// The counters.
        stats: StatsSnapshot,
    },
    /// Prometheus text exposition (format 0.0.4).
    Metrics {
        /// The exposition body.
        text: String,
    },
    /// Reply to a ping.
    Pong,
    /// Node identity and cache occupancy.
    NodeInfo {
        /// The reporting process's identity.
        info: NodeInfo,
    },
    /// Acknowledgement of a snapshot request.
    Snapshot {
        /// Cache entries written (0 when no snapshot path is configured).
        entries: usize,
    },
    /// Kept traces from the tail-sampled ring.
    Trace {
        /// The matching traces (empty when the id was dropped by the
        /// sampler or aged out).
        traces: Vec<WireTrace>,
    },
    /// Acknowledgement of a shutdown request.
    Shutdown,
    /// A structured error.
    Error {
        /// Stable machine-readable code (see [`EngineError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
        /// Back-off hint carried by `overloaded` (shed) errors, absent on
        /// every other code and on replies from older servers.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        retry_after_ms: Option<u64>,
    },
}

/// One trace on the wire: its id (hex) and every span any queried node
/// kept for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTrace {
    /// 32-hex-digit trace id.
    pub trace_id: String,
    /// The kept spans, in recording order per node.
    pub spans: Vec<WireSpan>,
}

/// Serde mirror of [`share_obs::SpanRecord`] (span ids are u64 — fine as
/// JSON numbers — but the 128-bit trace id rides as hex on [`WireTrace`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpan {
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_span_id: u64,
    /// Span name (`router_recv`, `engine_request`, `solve`, …).
    pub name: String,
    /// Node that recorded the span.
    pub node: String,
    /// Monotonic-anchored unix microseconds at span start.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Cache/degrade/shed/stage annotations.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub annotations: Vec<(String, String)>,
}

impl WireSpan {
    /// Convert a locally recorded span to its wire form.
    pub fn from_record(rec: &share_obs::SpanRecord) -> Self {
        WireSpan {
            span_id: rec.span_id,
            parent_span_id: rec.parent_span_id,
            name: rec.name.clone(),
            node: rec.node.clone(),
            start_us: rec.start_us,
            duration_ns: rec.duration_ns,
            annotations: rec.annotations.clone(),
        }
    }
}

impl WireTrace {
    /// Build the wire form of one kept trace.
    pub fn from_spans(trace_id: u128, spans: &[share_obs::SpanRecord]) -> Self {
        WireTrace {
            trace_id: share_obs::trace::format_trace_id(trace_id),
            spans: spans.iter().map(WireSpan::from_record).collect(),
        }
    }
}

/// Answer a `trace` request from this process's kept-trace ring: the trace
/// named by `trace_id` (if kept), plus the `slowest_n` slowest kept traces.
/// Both servers and the cluster router use this for their local spans.
pub(crate) fn local_trace_response(
    id: u64,
    trace_id: Option<&str>,
    slowest_n: Option<usize>,
) -> WireResponse {
    let mut traces = Vec::new();
    if let Some(tid) = trace_id.and_then(share_obs::trace::parse_trace_id) {
        if let Some(spans) = share_obs::trace::get_trace(tid) {
            traces.push(WireTrace::from_spans(tid, &spans));
        }
    }
    if let Some(n) = slowest_n {
        for (tid, spans) in share_obs::trace::slowest(n) {
            let hex = share_obs::trace::format_trace_id(tid);
            if !traces.iter().any(|t: &WireTrace| t.trace_id == hex) {
                traces.push(WireTrace::from_spans(tid, &spans));
            }
        }
    }
    WireResponse {
        id,
        trace: None,
        body: ResponseBody::Trace { traces },
    }
}

impl WireResponse {
    /// Build the wire form of an engine error.
    pub fn from_error(id: u64, error: &EngineError) -> Self {
        Self {
            id,
            trace: None,
            body: ResponseBody::Error {
                code: error.code().to_string(),
                message: error.to_string(),
                retry_after_ms: error.retry_after_ms(),
            },
        }
    }

    /// Build the wire form of an engine reply, echoing its trace context.
    pub fn from_reply(reply: Reply) -> Self {
        let trace = reply.trace;
        let mut resp = match reply.result {
            Ok(result) => Self {
                id: reply.id,
                trace: None,
                body: ResponseBody::Solve { result },
            },
            Err(e) => Self::from_error(reply.id, &e),
        };
        resp.trace = trace;
        resp
    }

    /// `true` unless this is an error response.
    pub fn is_ok(&self) -> bool {
        !matches!(self.body, ResponseBody::Error { .. })
    }
}

/// Parse one request line.
///
/// # Errors
/// [`EngineError::InvalidRequest`] on malformed JSON or an unknown `kind`.
pub fn parse_request(line: &str) -> crate::error::Result<WireRequest> {
    serde_json::from_str(line).map_err(|e| EngineError::InvalidRequest(e.to_string()))
}

/// [`parse_request`] with the zero-allocation fast path in front: the hot
/// request shapes (seeded solves and the bodyless kinds) parse without
/// serde or any heap allocation; everything else falls through to the
/// serde parser, which stays authoritative.
///
/// # Errors
/// Same as [`parse_request`].
pub fn parse_request_hot(line: &str) -> crate::error::Result<WireRequest> {
    if let Some(req) = parse_request_fast(line.as_bytes()) {
        return Ok(req);
    }
    parse_request(line)
}

/// Hand-rolled parser for a strict *subset* of the request grammar: a
/// single-level JSON object holding only `kind`, `id`, `spec` (seeded form
/// with integer fields), `mode` and `deadline_ms`, with no string escapes,
/// no floats, no duplicate keys and no trailing bytes. Returns `Some` only
/// when serde would parse the line to exactly the same [`WireRequest`];
/// anything unusual — a `trace` field, a batch, an explicit market, a `v`
/// override (float), non-canonical numbers — returns `None` so the caller
/// falls back to [`parse_request`]. The differential proptest harness
/// (`tests/parser_diff.rs`) pins this agreement.
pub fn parse_request_fast(line: &[u8]) -> Option<WireRequest> {
    fast::parse(line)
}

/// The fast-path parser internals. Every bail-out here is a correctness
/// guarantee, not a failure: `None` always means "let serde decide".
mod fast {
    use super::{MarketSpec, RequestBody, SolveMode, WireRequest};

    struct Cursor<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> Cursor<'a> {
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn eat(&mut self, c: u8) -> Option<()> {
            if self.peek() == Some(c) {
                self.i += 1;
                Some(())
            } else {
                None
            }
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }

        /// A quoted string without escapes or control characters; anything
        /// fancier bails to serde.
        fn string(&mut self) -> Option<&'a [u8]> {
            self.eat(b'"')?;
            let start = self.i;
            loop {
                match self.peek()? {
                    b'"' => {
                        let s = &self.b[start..self.i];
                        self.i += 1;
                        return Some(s);
                    }
                    b'\\' => return None,
                    c if c < 0x20 => return None,
                    _ => self.i += 1,
                }
            }
        }

        /// A canonical non-negative integer literal: digits only, no
        /// leading zeros, no sign/fraction/exponent, fits in u64.
        fn u64(&mut self) -> Option<u64> {
            let start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            let digits = &self.b[start..self.i];
            if digits.is_empty() || (digits.len() > 1 && digits[0] == b'0') {
                return None;
            }
            if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                return None;
            }
            let mut v: u64 = 0;
            for &d in digits {
                v = v.checked_mul(10)?.checked_add(u64::from(d - b'0'))?;
            }
            Some(v)
        }
    }

    /// The seeded `spec` object: `m` and `seed` required, `n_pieces`
    /// optional; a `v` override is a float and bails.
    fn seeded_spec(c: &mut Cursor<'_>) -> Option<MarketSpec> {
        c.eat(b'{')?;
        let mut m: Option<u64> = None;
        let mut seed: Option<u64> = None;
        let mut n_pieces: Option<u64> = None;
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.eat(b':')?;
            c.skip_ws();
            let slot = match key {
                b"m" => &mut m,
                b"seed" => &mut seed,
                b"n_pieces" => &mut n_pieces,
                _ => return None,
            };
            if slot.replace(c.u64()?).is_some() {
                return None; // duplicate key
            }
            c.skip_ws();
            match c.peek()? {
                b',' => c.i += 1,
                b'}' => {
                    c.i += 1;
                    break;
                }
                _ => return None,
            }
        }
        Some(MarketSpec::Seeded {
            m: usize::try_from(m?).ok()?,
            seed: seed?,
            n_pieces: match n_pieces {
                Some(n) => Some(usize::try_from(n).ok()?),
                None => None,
            },
            v: None,
        })
    }

    pub(super) fn parse(line: &[u8]) -> Option<WireRequest> {
        let mut c = Cursor { b: line, i: 0 };
        c.skip_ws();
        c.eat(b'{')?;
        let mut id: Option<u64> = None;
        let mut kind: Option<&[u8]> = None;
        let mut mode: Option<SolveMode> = None;
        let mut deadline_ms: Option<u64> = None;
        let mut spec: Option<MarketSpec> = None;
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.eat(b':')?;
            c.skip_ws();
            let duplicate = match key {
                b"id" => id.replace(c.u64()?).is_some(),
                b"kind" => kind.replace(c.string()?).is_some(),
                b"mode" => {
                    let m = match c.string()? {
                        b"direct" => SolveMode::Direct,
                        b"mean_field" => SolveMode::MeanField,
                        b"numeric" => SolveMode::Numeric,
                        _ => return None,
                    };
                    mode.replace(m).is_some()
                }
                b"deadline_ms" => deadline_ms.replace(c.u64()?).is_some(),
                b"spec" => spec.replace(seeded_spec(&mut c)?).is_some(),
                // `trace`, `requests`, `trace_id`, unknown keys: serde.
                _ => return None,
            };
            if duplicate {
                return None;
            }
            c.skip_ws();
            match c.peek()? {
                b',' => c.i += 1,
                b'}' => {
                    c.i += 1;
                    break;
                }
                _ => return None,
            }
        }
        c.skip_ws();
        if c.i != c.b.len() {
            return None; // trailing bytes: serde rejects, let it
        }
        let body = match kind? {
            b"solve" => RequestBody::Solve {
                spec: spec.take()?,
                mode: mode.take().unwrap_or_default(),
                deadline_ms: deadline_ms.take(),
            },
            // The bodyless kinds take the fast path only when the line
            // carries nothing but `kind` and `id` — extra fields go to
            // serde so its leniency rules stay authoritative.
            simple if spec.is_none() && mode.is_none() && deadline_ms.is_none() => match simple {
                b"stats" => RequestBody::Stats,
                b"metrics" => RequestBody::Metrics,
                b"ping" => RequestBody::Ping,
                b"node_info" => RequestBody::NodeInfo,
                b"snapshot" => RequestBody::Snapshot,
                b"shutdown" => RequestBody::Shutdown,
                _ => return None,
            },
            _ => return None,
        };
        Some(WireRequest {
            id: id.unwrap_or(0),
            trace: None,
            body,
        })
    }
}

/// Encode one response as its wire line (without the trailing newline).
///
/// Serialization cannot fail for the types in [`ResponseBody`] (serde_json
/// maps non-finite floats to `null`), but a connection thread must never
/// panic on output either — an impossible failure degrades to a literal
/// `internal` error line carrying the same id.
pub fn encode_response(resp: &WireResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| {
        format!(
            r#"{{"id":{},"kind":"error","code":"internal","message":"response failed to serialize"}}"#,
            resp.id
        )
    })
}

/// [`encode_response`] appending the wire line *plus the trailing newline*
/// onto a caller-owned buffer — the event-loop server's pooled
/// per-connection write buffer — so a warm response serializes with no
/// heap allocation beyond the buffer's own amortized growth. Bytes are
/// identical to `encode_response(resp) + "\n"`.
pub fn encode_response_into(resp: &WireResponse, out: &mut Vec<u8>) {
    use std::io::Write;
    let start = out.len();
    if serde_json::to_writer(&mut *out, resp).is_err() {
        out.truncate(start);
        let _ = write!(
            out,
            r#"{{"id":{},"kind":"error","code":"internal","message":"response failed to serialize"}}"#,
            resp.id
        );
    }
    out.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_roundtrip() {
        let line = r#"{"kind":"solve","id":7,"spec":{"m":10,"seed":1},"mode":"numeric","deadline_ms":250}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, 7);
        match &req.body {
            RequestBody::Solve {
                spec,
                mode,
                deadline_ms,
            } => {
                assert!(matches!(spec, MarketSpec::Seeded { m: 10, seed: 1, .. }));
                assert_eq!(*mode, SolveMode::Numeric);
                assert_eq!(*deadline_ms, Some(250));
            }
            other => panic!("wrong body: {other:?}"),
        }
        let encoded = serde_json::to_string(&req).unwrap();
        let back = parse_request(&encoded).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unit_kinds_parse_and_default_id() {
        for (line, want) in [
            (r#"{"kind":"stats"}"#, RequestBody::Stats),
            (r#"{"kind":"metrics"}"#, RequestBody::Metrics),
            (r#"{"kind":"ping"}"#, RequestBody::Ping),
            (r#"{"kind":"node_info"}"#, RequestBody::NodeInfo),
            (r#"{"kind":"snapshot"}"#, RequestBody::Snapshot),
            (r#"{"kind":"shutdown"}"#, RequestBody::Shutdown),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(req.id, 0);
            assert_eq!(req.body, want);
        }
    }

    #[test]
    fn malformed_lines_are_invalid_requests() {
        assert!(matches!(
            parse_request("{not json"),
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"frobnicate","id":1}"#),
            Err(EngineError::InvalidRequest(_))
        ));
    }

    #[test]
    fn error_response_carries_stable_code() {
        let resp = WireResponse::from_error(3, &EngineError::Overloaded { retry_after_ms: 40 });
        assert!(!resp.is_ok());
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"overloaded""#), "{line}");
        assert!(line.contains(r#""retry_after_ms":40"#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn non_shed_errors_omit_the_retry_hint() {
        let resp = WireResponse::from_error(1, &EngineError::WorkerPanic("boom".into()));
        let line = encode_response(&resp);
        assert!(line.contains(r#""code":"worker_panic""#), "{line}");
        assert!(!line.contains("retry_after_ms"), "{line}");
        // Error lines from pre-fault-tolerance servers (no hint field)
        // still deserialize.
        let legacy = r#"{"id":2,"kind":"error","code":"overloaded","message":"full"}"#;
        let back: WireResponse = serde_json::from_str(legacy).unwrap();
        match back.body {
            ResponseBody::Error { retry_after_ms, .. } => assert_eq!(retry_after_ms, None),
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn node_info_response_roundtrip() {
        let resp = WireResponse {
            id: 4,
            trace: None,
            body: ResponseBody::NodeInfo {
                info: NodeInfo {
                    node_id: "n1".to_string(),
                    cache_entries: 12,
                    cache_shards: 8,
                    workers: 2,
                    requests: 99,
                    snapshot_path: Some("/tmp/n1.snap".to_string()),
                },
            },
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""kind":"node_info""#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn trace_field_roundtrips_and_stays_off_the_wire_when_absent() {
        // Untraced requests/replies must serialize byte-identically to
        // the pre-tracing protocol.
        let req = parse_request(r#"{"kind":"ping","id":1}"#).unwrap();
        assert_eq!(req.trace, None);
        assert!(!serde_json::to_string(&req).unwrap().contains("trace"));
        let resp = WireResponse {
            id: 1,
            trace: None,
            body: ResponseBody::Pong,
        };
        assert!(!encode_response(&resp).contains("trace"));

        let ctx = share_obs::TraceContext {
            trace_id: 0xabcd,
            span_id: 7,
            sampled: true,
        };
        let line = format!(
            r#"{{"kind":"solve","id":2,"trace":"{}","spec":{{"m":5,"seed":1}}}}"#,
            ctx.to_wire()
        );
        let req = parse_request(&line).unwrap();
        assert_eq!(
            req.trace.as_deref().and_then(share_obs::TraceContext::from_wire),
            Some(ctx)
        );
        let encoded = serde_json::to_string(&req).unwrap();
        assert_eq!(parse_request(&encoded).unwrap(), req);
    }

    #[test]
    fn trace_kind_roundtrip() {
        let req = parse_request(r#"{"kind":"trace","id":3,"slowest":2}"#).unwrap();
        assert_eq!(
            req.body,
            RequestBody::Trace {
                trace_id: None,
                slowest: Some(2)
            }
        );
        let by_id = parse_request(&format!(
            r#"{{"kind":"trace","trace_id":"{}"}}"#,
            share_obs::trace::format_trace_id(0xfeed)
        ))
        .unwrap();
        match &by_id.body {
            RequestBody::Trace { trace_id, slowest } => {
                assert_eq!(
                    trace_id.as_deref().and_then(share_obs::trace::parse_trace_id),
                    Some(0xfeed)
                );
                assert_eq!(*slowest, None);
            }
            other => panic!("wrong body: {other:?}"),
        }

        let rec = share_obs::SpanRecord {
            trace_id: 0xfeed,
            span_id: 11,
            parent_span_id: 0,
            name: "router_recv".into(),
            node: "router".into(),
            start_us: 1_000,
            duration_ns: 2_000_000,
            annotations: vec![("cache".into(), "hit".into())],
        };
        let resp = WireResponse {
            id: 3,
            trace: None,
            body: ResponseBody::Trace {
                traces: vec![WireTrace::from_spans(0xfeed, &[rec])],
            },
        };
        let line = encode_response(&resp);
        assert!(line.contains(r#""kind":"trace""#), "{line}");
        let back: WireResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        match back.body {
            ResponseBody::Trace { traces } => {
                assert_eq!(traces[0].spans[0].name, "router_recv");
                assert_eq!(
                    traces[0].spans[0].annotations,
                    vec![("cache".to_string(), "hit".to_string())]
                );
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn reply_trace_echo_survives_both_result_arms() {
        let wire = share_obs::TraceContext {
            trace_id: 1,
            span_id: 2,
            sampled: false,
        }
        .to_wire();
        let err_reply = Reply {
            id: 5,
            trace: Some(wire.clone()),
            result: Err(EngineError::WorkerPanic("boom".into())),
        };
        let resp = WireResponse::from_reply(err_reply);
        assert_eq!(resp.trace, Some(wire.clone()));
        assert!(!resp.is_ok());
        let line = encode_response(&resp);
        assert!(line.contains(&format!(r#""trace":"{wire}""#)), "{line}");
    }

    #[test]
    fn fast_path_agrees_with_serde_on_hot_shapes() {
        for line in [
            r#"{"kind":"solve","id":7,"spec":{"m":10,"seed":1},"mode":"numeric","deadline_ms":250}"#,
            r#"{"kind":"solve","spec":{"m":100,"seed":42}}"#,
            r#"{"spec":{"seed":0,"m":3,"n_pieces":500},"kind":"solve","mode":"mean_field"}"#,
            r#"{"kind":"ping","id":3}"#,
            r#"{"kind":"stats"}"#,
            r#"{"kind":"metrics"}"#,
            r#"{"kind":"node_info","id":9}"#,
            r#"{"kind":"snapshot"}"#,
            r#"{"kind":"shutdown","id":4}"#,
            r#"  { "kind" : "solve" , "spec" : { "m" : 2 , "seed" : 8 } }  "#,
        ] {
            let fast = parse_request_fast(line.as_bytes())
                .unwrap_or_else(|| panic!("fast path should accept: {line}"));
            assert_eq!(fast, parse_request(line).unwrap(), "{line}");
            assert_eq!(parse_request_hot(line).unwrap(), fast, "{line}");
        }
    }

    #[test]
    fn fast_path_bails_outside_its_subset() {
        // Each of these must fall back to serde (some parse there, some
        // are rejected there) — the fast path may never guess.
        for line in [
            r#"{"kind":"solve","trace":"00-00-0","spec":{"m":2,"seed":1}}"#, // trace
            r#"{"kind":"batch","id":1,"requests":[]}"#,                      // batch
            r#"{"kind":"trace","slowest":2}"#,                               // trace fetch
            r#"{"kind":"solve","spec":{"m":2,"seed":1,"v":0.5}}"#,           // float
            r#"{"kind":"solve","spec":{"m":2,"seed":1},"id":01}"#,           // leading zero
            r#"{"kind":"solve","spec":{"m":2,"seed":1},"id":-3}"#,           // sign
            r#"{"kind":"solve","spec":{"m":2,"seed":1e2}}"#,                 // exponent
            r#"{"kind":"solve","spec":{"buyer":{}}}"#,                       // explicit-ish
            r#"{"kind":"solve","spec":{"m":2,"seed":1},"spec":{"m":3,"seed":1}}"#, // dup
            "{\"kind\":\"so\\u006cve\",\"spec\":{\"m\":2,\"seed\":1}}",      // escape
            r#"{"kind":"ping","mode":"direct"}"#,                            // extra field
            r#"{"kind":"ping"} trailing"#,                                   // trailing bytes
            "{not json",
        ] {
            assert!(
                parse_request_fast(line.as_bytes()).is_none(),
                "fast path must bail on: {line}"
            );
            // And the hot entry point still matches serde bit-for-bit.
            match (parse_request_hot(line), parse_request(line)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{line}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("accept/reject disagree on {line}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn encode_into_matches_encode_string() {
        let resp = WireResponse {
            id: 11,
            trace: Some("00000000000000000000000000000001-0000000000000002-01".into()),
            body: ResponseBody::Pong,
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(b"previous line\n");
        encode_response_into(&resp, &mut buf);
        let expected = format!("previous line\n{}\n", encode_response(&resp));
        assert_eq!(buf, expected.as_bytes());
    }

    #[test]
    fn batch_request_roundtrip() {
        let line = r#"{"kind":"batch","id":9,"requests":[{"spec":{"m":3,"seed":1}},{"spec":{"m":4,"seed":2},"mode":"mean_field"}]}"#;
        let req = parse_request(line).unwrap();
        match &req.body {
            RequestBody::Batch { requests } => {
                assert_eq!(requests.len(), 2);
                assert_eq!(requests[1].mode, SolveMode::MeanField);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }
}
