//! NDJSON servers over stdio and TCP.
//!
//! The TCP server runs on a fixed event-loop pool (unix): an accept thread
//! round-robins nonblocking sockets across `reactors` threads, each owning
//! a readiness queue ([`reactor`](crate::reactor)) and the per-connection
//! read/write buffers ([`conn`](crate::conn)). Engine [`Reply`]s completed
//! by the worker pool are routed back onto the owning connection through a
//! wakeup pipe, so responses to pipelined requests stream back out of
//! order, correlated by `id` — and the process thread count is
//! `reactors + workers + supervisor + accept`, independent of how many
//! connections are open.
//!
//! Stdio serving (and TCP on non-unix platforms) keeps the original
//! blocking loop: a reader thread parses request lines and feeds the
//! engine, a writer thread owns the output stream, and a forwarder turns
//! replies into wire responses as solves complete. The wire semantics are
//! identical on both paths.
//!
//! Shutdown is graceful everywhere: a `shutdown` request is acknowledged,
//! in-flight replies for the connection are flushed before it closes, and
//! the TCP accept loop is woken and stopped.
//!
//! A separate plaintext listener ([`serve_metrics`]) answers every
//! connection with the engine's Prometheus exposition wrapped in a minimal
//! HTTP/1.0 response, so a stock Prometheus scraper (or `curl`) can point
//! at it directly without speaking NDJSON.

use crate::engine::{Engine, Reply};
use crate::protocol::{
    encode_response, local_trace_response, parse_request_hot, RequestBody, ResponseBody,
    WireResponse,
};
#[cfg(unix)]
use crate::reactor::ReactorPool;
use crate::spec::SolveSpec;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn writer_loop<W: Write>(mut w: W, rx: Receiver<WireResponse>) {
    for resp in rx {
        if writeln!(w, "{}", encode_response(&resp)).is_err() || w.flush().is_err() {
            break;
        }
    }
}

fn handle_batch(
    engine: &Arc<Engine>,
    id: u64,
    requests: Vec<SolveSpec>,
    trace: Option<String>,
    resp_tx: &Sender<WireResponse>,
) {
    let engine = Arc::clone(engine);
    let batch_tx = resp_tx.clone();
    // Fan out and collect off-thread so the reader keeps draining pipelined
    // requests while the batch is in flight. `solve_batch` spreads the
    // sub-requests across the whole worker pool and hands back the results
    // in submission order, so each inner response's `id` is its position.
    let spawned = thread::Builder::new()
        .name("share-engine-batch".to_string())
        .spawn(move || {
            let ctx = trace
                .as_deref()
                .and_then(share_obs::TraceContext::from_wire);
            let results: Vec<WireResponse> = engine
                .solve_batch_traced(&requests, ctx)
                .into_iter()
                .enumerate()
                .map(|(i, result)| {
                    WireResponse::from_reply(Reply {
                        id: i as u64,
                        trace: None,
                        result,
                    })
                })
                .collect();
            let _ = batch_tx.send(WireResponse {
                id,
                trace,
                body: ResponseBody::Batch { results },
            });
        });
    if spawned.is_err() {
        // Thread exhaustion: answer rather than silently dropping the batch.
        let _ = resp_tx.send(WireResponse::from_error(
            id,
            &crate::error::EngineError::Overloaded {
                retry_after_ms: 100,
            },
        ));
    }
}

/// Serve one connection's request stream. Returns `true` when the client
/// asked the server to shut down.
fn serve_connection<R: BufRead>(
    engine: &Arc<Engine>,
    reader: R,
    resp_tx: &Sender<WireResponse>,
) -> bool {
    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let forward_tx = resp_tx.clone();
    let forwarder = thread::spawn(move || {
        for reply in reply_rx {
            if forward_tx.send(WireResponse::from_reply(reply)).is_err() {
                break;
            }
        }
    });
    let mut wants_shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Fault plan: drop the connection after reading a request, without
        // replying to it. Replies already in flight for this connection
        // still flush below; the just-read request is discarded — exactly
        // the half-served failure clients must survive. (The accept loop
        // is untouched: the *server* never goes down.)
        if engine.should_drop_connection() {
            share_obs::obs_debug!(
                target: "share_engine::server",
                "injected_conn_drop",
                "id" => 0_u64
            );
            break;
        }
        match parse_request_hot(line) {
            Err(e) => {
                engine.note_invalid();
                let _ = resp_tx.send(WireResponse::from_error(0, &e));
            }
            Ok(req) => match req.body {
                RequestBody::Solve {
                    spec,
                    mode,
                    deadline_ms,
                } => {
                    let solve = SolveSpec {
                        spec,
                        mode,
                        deadline_ms,
                    };
                    let trace = req
                        .trace
                        .as_deref()
                        .and_then(share_obs::TraceContext::from_wire);
                    engine.submit_traced(req.id, &solve, &reply_tx, trace);
                }
                RequestBody::Batch { requests } => {
                    handle_batch(engine, req.id, requests, req.trace, resp_tx);
                }
                RequestBody::Stats => {
                    let _ = resp_tx.send(WireResponse {
                        id: req.id,
                        trace: req.trace,
                        body: ResponseBody::Stats {
                            stats: engine.stats(),
                        },
                    });
                }
                RequestBody::Metrics => {
                    let _ = resp_tx.send(WireResponse {
                        id: req.id,
                        trace: req.trace,
                        body: ResponseBody::Metrics {
                            text: engine.render_prometheus(),
                        },
                    });
                }
                RequestBody::Ping => {
                    let _ = resp_tx.send(WireResponse {
                        id: req.id,
                        trace: req.trace,
                        body: ResponseBody::Pong,
                    });
                }
                RequestBody::NodeInfo => {
                    let _ = resp_tx.send(WireResponse {
                        id: req.id,
                        trace: req.trace,
                        body: ResponseBody::NodeInfo {
                            info: engine.node_info(),
                        },
                    });
                }
                RequestBody::Trace { trace_id, slowest } => {
                    let _ = resp_tx.send(local_trace_response(
                        req.id,
                        trace_id.as_deref(),
                        slowest,
                    ));
                }
                RequestBody::Snapshot => {
                    let resp = match engine.write_snapshot() {
                        Ok(entries) => WireResponse {
                            id: req.id,
                            trace: req.trace,
                            body: ResponseBody::Snapshot { entries },
                        },
                        Err(e) => WireResponse::from_error(
                            req.id,
                            &crate::error::EngineError::Internal(e.to_string()),
                        ),
                    };
                    let _ = resp_tx.send(resp);
                }
                RequestBody::Shutdown => {
                    let _ = resp_tx.send(WireResponse {
                        id: req.id,
                        trace: req.trace,
                        body: ResponseBody::Shutdown,
                    });
                    wants_shutdown = true;
                    break;
                }
            },
        }
    }
    // Wait for in-flight replies on this connection to flush.
    drop(reply_tx);
    let _ = forwarder.join();
    wants_shutdown
}

/// Serve NDJSON requests from stdin to stdout until EOF or a `shutdown`
/// request. Returns `true` when shutdown was requested explicitly.
pub fn serve_stdio(engine: &Arc<Engine>) -> bool {
    let (resp_tx, resp_rx) = unbounded();
    let writer = thread::spawn(move || writer_loop(io::stdout(), resp_rx));
    let stdin = io::stdin();
    let wants_shutdown = serve_connection(engine, stdin.lock(), &resp_tx);
    drop(resp_tx);
    let _ = writer.join();
    wants_shutdown
}

/// A running TCP server: an accept thread feeding a fixed reactor pool
/// (unix), or one reader thread per connection on other platforms.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
    #[cfg(unix)]
    pool: Option<Arc<ReactorPool>>,
}

/// Legacy thread-per-connection handler (stdio shares `serve_connection`;
/// TCP uses this only on non-unix platforms).
#[cfg_attr(unix, allow(dead_code))]
fn handle_tcp_connection(
    engine: Arc<Engine>,
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    local: SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (resp_tx, resp_rx) = unbounded();
    let writer = thread::spawn(move || writer_loop(stream, resp_rx));
    let wants_shutdown = serve_connection(&engine, BufReader::new(read_half), &resp_tx);
    drop(resp_tx);
    let _ = writer.join();
    if wants_shutdown && !stop.swap(true, Ordering::SeqCst) {
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(local);
    }
}

/// Default reactor-thread count: enough parallelism to spread socket work
/// without approaching the worker pool's share of the cores.
pub fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(1)
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve the engine over TCP with the
/// default reactor count.
///
/// # Errors
/// I/O errors from binding the listener.
pub fn serve_tcp(engine: Arc<Engine>, addr: &str) -> io::Result<TcpServer> {
    serve_tcp_with(engine, addr, default_reactors())
}

/// Bind `addr` and serve the engine over TCP on a fixed pool of `reactors`
/// event-loop threads (clamped to at least 1). On non-unix platforms the
/// reactor count is ignored and the legacy thread-per-connection path
/// serves instead.
///
/// # Errors
/// I/O errors from binding the listener or spawning the reactor pool.
pub fn serve_tcp_with(engine: Arc<Engine>, addr: &str, reactors: usize) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    #[cfg(unix)]
    {
        let pool = Arc::new(ReactorPool::start(&engine, reactors, local, &stop)?);
        let accept_stop = Arc::clone(&stop);
        let accept_pool = Arc::clone(&pool);
        let accept = thread::Builder::new()
            .name("share-engine-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    accept_pool.dispatch(stream);
                }
            })?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Mutex::new(Some(accept)),
            pool: Some(pool),
        })
    }

    #[cfg(not(unix))]
    {
        let _ = reactors;
        let accept_stop = Arc::clone(&stop);
        let accept = thread::Builder::new()
            .name("share-engine-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let engine = Arc::clone(&engine);
                    let conn_stop = Arc::clone(&accept_stop);
                    // Thread exhaustion closes this connection (the client
                    // sees EOF and may retry) instead of killing the accept
                    // loop.
                    let _ = thread::Builder::new()
                        .name("share-engine-conn".to_string())
                        .spawn(move || handle_tcp_connection(engine, stream, conn_stop, local));
                }
            })?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Mutex::new(Some(accept)),
        })
    }
}

impl TcpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, then drain the reactors: in-flight replies flush to
    /// their connections before the sockets close and the pool joins.
    pub fn stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        self.wait();
        #[cfg(unix)]
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
    }

    /// Block until the accept loop exits (via [`TcpServer::stop`] or a
    /// client `shutdown` request).
    pub fn wait(&self) {
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A running Prometheus scrape endpoint (see [`serve_metrics`]).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
}

fn handle_metrics_connection(engine: &Arc<Engine>, mut stream: TcpStream) {
    // Both directions are bounded: the handler runs inline on the accept
    // thread, so a scraper that connects and goes silent (or stops reading
    // the response) must not pin the listener past these timeouts.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(250)));
    // Drain (at most) one request head so well-behaved HTTP clients don't
    // see a reset; the reply is the same whatever was asked.
    let mut scratch = [0u8; 4096];
    let _ = io::Read::read(&mut stream, &mut scratch);
    let body = engine.render_prometheus();
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Bind `addr` (e.g. `127.0.0.1:9184`) and answer every connection with the
/// engine's current Prometheus text exposition over minimal HTTP/1.0.
///
/// # Errors
/// I/O errors from binding the listener.
pub fn serve_metrics(engine: Arc<Engine>, addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    share_obs::obs_info!(
        target: "share_engine::server",
        "metrics_listener_started",
        "addr" => local.to_string()
    );
    let accept = thread::Builder::new()
        .name("share-engine-metrics".to_string())
        .spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                handle_metrics_connection(&engine, stream);
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        accept: Mutex::new(Some(accept)),
    })
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to stop and wait for it to exit.
    pub fn stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        self.wait();
    }

    /// Block until the accept loop exits.
    pub fn wait(&self) {
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}
