//! # share-engine
//!
//! A concurrent **market-serving engine** in front of the Share SNE solver
//! stack: the piece that turns the one-shot library into long-lived serving
//! infrastructure (ROADMAP north star: "heavy traffic from millions of
//! users").
//!
//! Built on `std` + `crossbeam` + `parking_lot` only — no async runtime.
//!
//! ## Architecture
//!
//! | Module | Role |
//! |--------|------|
//! | [`spec`] | request specs: seeded or explicit markets, solver mode, deadline |
//! | [`quantize`] | tolerance-bucketed cache keys so near-identical markets coalesce |
//! | [`cache`] | sharded concurrent LRU equilibrium cache |
//! | [`engine`] | worker pool, bounded job queue, in-flight dedup, backpressure, load shedding, batch fan-out |
//! | [`fault`] | seeded deterministic fault injection (panics, latency, divergence, connection drops) |
//! | [`metrics`] | counters, gauges and latency histograms (p50/p90/p99/p99.9) with Prometheus exposition |
//! | [`protocol`] | newline-delimited JSON wire protocol (solve/batch/stats/metrics/ping/node_info/snapshot/shutdown) |
//! | [`snapshot`] | warm-cache snapshot files: drain to disk, restore on start |
//! | [`server`] | stdio and TCP servers with graceful shutdown, plus a Prometheus scrape listener |
//! | `reactor` | fixed-pool nonblocking event loop (epoll/poll) with pipe wakeups and reply routing |
//! | `conn` | per-connection nonblocking buffers + incremental NDJSON framing |
//! | [`client`] | blocking TCP client with pipelining support |
//!
//! ## Example
//!
//! ```
//! use share_engine::{Engine, EngineConfig, SolveMode, SolveSpec};
//!
//! let engine = Engine::start(EngineConfig {
//!     workers: 2,
//!     ..EngineConfig::default()
//! });
//! let spec = SolveSpec::seeded(50, 42, SolveMode::Direct);
//! let first = engine.request(&spec).unwrap();
//! let second = engine.request(&spec).unwrap();
//! assert!(!first.cached && second.cached);
//! assert_eq!(first.p_m, second.p_m);
//! let stats = engine.shutdown();
//! assert_eq!(stats.cache_hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod client;
#[cfg(unix)]
mod conn;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod quantize;
#[cfg(unix)]
mod reactor;
pub mod server;
pub mod snapshot;
pub mod spec;
mod supervisor;
mod worker;

pub use cache::{LruCache, ShardedCache};
pub use client::{Client, ClientConfig, ClientStats, RetryPolicy};
pub use engine::{
    DegradeInfo, DegradeReason, Engine, EngineConfig, HitScratch, NodeInfo, Reply,
    ResilienceConfig, SolveSummary,
};
pub use error::{EngineError, Result};
pub use fault::{FaultPlan, FaultSite};
pub use metrics::{Metrics, StatsSnapshot};
pub use protocol::{
    encode_response, encode_response_into, parse_request, parse_request_fast, parse_request_hot,
    RequestBody, ResponseBody, WireRequest, WireResponse, WireSpan, WireTrace,
};
pub use quantize::{quantize, quantize_into, CacheKey, QuantizerConfig};
pub use server::{
    default_reactors, serve_metrics, serve_stdio, serve_tcp, serve_tcp_with, MetricsServer,
    TcpServer,
};
pub use spec::{MarketSpec, SolveMode, SolveSpec};
