//! Serving metrics: counters, gauges and latency histograms.
//!
//! All hot-path updates are lock-free (relaxed atomics inside
//! `share_obs` counters/histograms). A [`StatsSnapshot`] is a
//! consistent-enough point-in-time copy exposed via the wire `stats`
//! request and printed on shutdown; [`Metrics::render_prometheus`]
//! renders the same state as a Prometheus text exposition for scraping.
//!
//! Service latency is kept in a log-bucketed histogram
//! (`share_request_latency_seconds`), so the snapshot reports p50/p90/p99/
//! p99.9 quantiles with bounded (~3%) relative error in addition to the
//! exact min/mean/max the wire format has always carried. Separate
//! histograms track queue wait, per-mode solve latency and per-stage solver
//! cost (stage1/stage2/stage3 of the backward induction).

use crate::fault::FaultSite;
use crate::spec::SolveMode;
use serde::{Deserialize, Serialize};
use share_market::solver::StageTimings;
use share_obs::hist::LogHistogram;
use share_obs::metrics::{Counter, Gauge, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters, gauges and histograms shared by the engine, its workers and
/// the servers, backed by one `share_obs` metrics [`Registry`].
pub struct Metrics {
    registry: Registry,
    start: Instant,

    requests: Arc<Counter>,
    solves: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    deduped: Arc<Counter>,
    rejected: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    invalid: Arc<Counter>,
    worker_panics: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    requests_shed: Arc<Counter>,
    requests_degraded: Arc<Counter>,
    fault_worker_panic: Arc<Counter>,
    fault_solve_latency: Arc<Counter>,
    fault_divergence: Arc<Counter>,
    fault_conn_drop: Arc<Counter>,
    snapshot_restored: Arc<Counter>,
    snapshot_writes: Arc<Counter>,
    warm_hint_hits: Arc<Counter>,
    warm_hint_misses: Arc<Counter>,
    warm_fallbacks: Arc<Counter>,

    queue_depth: Arc<Gauge>,
    inflight_solves: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_shards: Arc<Gauge>,
    uptime_seconds: Arc<Gauge>,
    cache_hit_ratio: Arc<Gauge>,
    connections_open: Arc<Gauge>,
    reactor_wakeups: Arc<Counter>,

    service_latency: Arc<LogHistogram>,
    queue_wait: Arc<LogHistogram>,
    solve_direct: Arc<LogHistogram>,
    solve_mean_field: Arc<LogHistogram>,
    solve_numeric: Arc<LogHistogram>,
    stage1: Arc<LogHistogram>,
    stage2: Arc<LogHistogram>,
    stage3: Arc<LogHistogram>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

/// `Metrics::default()` must behave exactly like [`Metrics::new`]. An
/// earlier version derived `Default`, which zero-initialized the latency
/// minimum instead of priming it to `u64::MAX`, so the reported minimum
/// stuck at 0 forever on default-constructed metrics.
impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh zeroed metrics with all families registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter(
            "share_requests_total",
            "Submissions accepted by the engine (including later rejections).",
        );
        let solves = registry.counter("share_solves_total", "Solver runs actually executed.");
        let cache_hits = registry.counter(
            "share_cache_hits_total",
            "Requests answered from the equilibrium cache.",
        );
        let cache_misses = registry.counter(
            "share_cache_misses_total",
            "Requests that missed the cache.",
        );
        let deduped = registry.counter(
            "share_deduped_total",
            "Requests coalesced onto an in-flight identical solve.",
        );
        let rejected = registry.counter(
            "share_rejected_total",
            "Requests rejected by queue backpressure.",
        );
        let deadline_expired = registry.counter(
            "share_deadline_expired_total",
            "Requests whose deadline expired before completion.",
        );
        let invalid = registry.counter("share_invalid_total", "Malformed requests.");
        let worker_panics = registry.counter(
            "share_worker_panics_total",
            "Solver panics caught by the worker guard (injected or real).",
        );
        let worker_restarts = registry.counter(
            "share_worker_restarts_total",
            "Dead workers respawned by the supervisor.",
        );
        let requests_shed = registry.counter(
            "share_requests_shed_total",
            "Requests rejected by the load-shedding admission gate.",
        );
        let requests_degraded = registry.counter(
            "share_requests_degraded_total",
            "Requests answered by the mean-field degradation ladder.",
        );
        let fault_help = "Faults injected by the active fault plan, by kind.";
        let fault_worker_panic = registry.counter_with(
            "share_fault_injections_total",
            fault_help,
            &[("kind", "worker_panic")],
        );
        let fault_solve_latency = registry.counter_with(
            "share_fault_injections_total",
            fault_help,
            &[("kind", "solve_latency")],
        );
        let fault_divergence = registry.counter_with(
            "share_fault_injections_total",
            fault_help,
            &[("kind", "divergence")],
        );
        let fault_conn_drop = registry.counter_with(
            "share_fault_injections_total",
            fault_help,
            &[("kind", "conn_drop")],
        );
        let snapshot_restored = registry.counter(
            "share_snapshot_entries_restored_total",
            "Cache entries loaded from a warm snapshot at engine start.",
        );
        let snapshot_writes = registry.counter(
            "share_snapshot_writes_total",
            "Cache snapshots written to disk (on drain or by request).",
        );
        let warm_hint_hits = registry.counter(
            "share_warm_hint_hits_total",
            "Numeric solves that found a neighboring equilibrium to warm-start from.",
        );
        let warm_hint_misses = registry.counter(
            "share_warm_hint_misses_total",
            "Numeric solves with no cached neighbor; ran the full cold scan.",
        );
        let warm_fallbacks = registry.counter(
            "share_warm_fallbacks_total",
            "Warm-started solves whose narrowed bracket failed and re-ran cold.",
        );

        let queue_depth = registry.gauge(
            "share_queue_depth",
            "Jobs currently waiting in the solve queue.",
        );
        let inflight_solves = registry.gauge(
            "share_inflight_solves",
            "Solver runs currently executing on workers.",
        );
        let cache_entries = registry.gauge(
            "share_cache_entries",
            "Entries in the equilibrium cache (all shards).",
        );
        let cache_shards = registry.gauge(
            "share_cache_shards",
            "Independently locked shards in the equilibrium cache.",
        );
        let uptime_seconds =
            registry.gauge("share_uptime_seconds", "Seconds since the engine started.");
        let cache_hit_ratio = registry.gauge(
            "share_cache_hit_ratio",
            "Cache hits over cache lookups since start (0 when no lookups).",
        );
        let connections_open = registry.gauge(
            "share_connections_open",
            "NDJSON TCP connections currently registered with the reactor pool.",
        );
        let reactor_wakeups = registry.counter(
            "share_reactor_wakeups_total",
            "Reactor event-loop wakeups delivered through the self-pipe.",
        );

        // Build identity: always 1; the interesting data is in the labels.
        // The git sha comes from the SHARE_GIT_SHA env var at compile time
        // (CI exports it), "unknown" on plain local builds.
        registry
            .gauge_with(
                "share_build_info",
                "Build identity of this process (value is always 1).",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("git_sha", option_env!("SHARE_GIT_SHA").unwrap_or("unknown")),
                ],
            )
            .set(1.0);

        let service_latency = registry.histogram(
            "share_request_latency_seconds",
            "End-to-end service latency, submission to reply.",
        );
        let queue_wait = registry.histogram(
            "share_queue_wait_seconds",
            "Time jobs spend queued before a worker picks them up.",
        );
        let solve_help = "Solver wall-clock time per run, by solve mode.";
        let solve_direct = registry.histogram_with(
            "share_solve_latency_seconds",
            solve_help,
            &[("mode", "direct")],
        );
        let solve_mean_field = registry.histogram_with(
            "share_solve_latency_seconds",
            solve_help,
            &[("mode", "mean_field")],
        );
        let solve_numeric = registry.histogram_with(
            "share_solve_latency_seconds",
            solve_help,
            &[("mode", "numeric")],
        );
        let stage_help = "Backward-induction stage wall-clock time per solve.";
        let stage1 = registry.histogram_with(
            "share_solver_stage_seconds",
            stage_help,
            &[("stage", "stage1")],
        );
        let stage2 = registry.histogram_with(
            "share_solver_stage_seconds",
            stage_help,
            &[("stage", "stage2")],
        );
        let stage3 = registry.histogram_with(
            "share_solver_stage_seconds",
            stage_help,
            &[("stage", "stage3")],
        );

        Metrics {
            registry,
            start: Instant::now(),
            requests,
            solves,
            cache_hits,
            cache_misses,
            deduped,
            rejected,
            deadline_expired,
            invalid,
            worker_panics,
            worker_restarts,
            requests_shed,
            requests_degraded,
            fault_worker_panic,
            fault_solve_latency,
            fault_divergence,
            fault_conn_drop,
            snapshot_restored,
            snapshot_writes,
            warm_hint_hits,
            warm_hint_misses,
            warm_fallbacks,
            queue_depth,
            inflight_solves,
            cache_entries,
            cache_shards,
            uptime_seconds,
            cache_hit_ratio,
            connections_open,
            reactor_wakeups,
            service_latency,
            queue_wait,
            solve_direct,
            solve_mean_field,
            solve_numeric,
            stage1,
            stage2,
            stage3,
        }
    }

    /// Count an accepted submission.
    pub fn inc_requests(&self) {
        self.requests.inc();
    }
    /// Count a completed solver run.
    pub fn inc_solves(&self) {
        self.solves.inc();
    }
    /// Count a cache hit.
    pub fn inc_cache_hits(&self) {
        self.cache_hits.inc();
    }
    /// Count a cache miss.
    pub fn inc_cache_misses(&self) {
        self.cache_misses.inc();
    }
    /// Count a request coalesced onto an in-flight solve.
    pub fn inc_deduped(&self) {
        self.deduped.inc();
    }
    /// Count a backpressure rejection.
    pub fn inc_rejected(&self) {
        self.rejected.inc();
    }
    /// Count a deadline expiry.
    pub fn inc_deadline_expired(&self) {
        self.deadline_expired.inc();
    }
    /// Count a malformed request.
    pub fn inc_invalid(&self) {
        self.invalid.inc();
    }
    /// Count a solver panic caught by the worker guard.
    pub fn inc_worker_panics(&self) {
        self.worker_panics.inc();
    }
    /// Count a dead worker respawned by the supervisor.
    pub fn inc_worker_restarts(&self) {
        self.worker_restarts.inc();
    }
    /// Worker restarts so far (tests and the supervisor's budget log).
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts.get()
    }
    /// Count a request rejected by the load-shedding admission gate.
    pub fn inc_shed(&self) {
        self.requests_shed.inc();
    }
    /// Count a request answered by the mean-field degradation ladder.
    pub fn inc_degraded(&self) {
        self.requests_degraded.inc();
    }
    /// Count one injected fault under its `kind` label.
    pub fn inc_fault_injection(&self, site: FaultSite) {
        match site {
            FaultSite::WorkerPanic => self.fault_worker_panic.inc(),
            FaultSite::SolveLatency => self.fault_solve_latency.inc(),
            FaultSite::Divergence => self.fault_divergence.inc(),
            FaultSite::ConnDrop => self.fault_conn_drop.inc(),
        }
    }

    /// A job entered the solve queue.
    pub fn queue_depth_inc(&self) {
        self.queue_depth.inc();
    }
    /// A worker dequeued a job that waited `waited` in the queue.
    pub fn queue_depth_dec(&self, waited: Duration) {
        self.queue_depth.dec();
        self.queue_wait.record_duration(waited);
    }
    /// Jobs currently waiting in the solve queue (the admission gate and
    /// the degradation ladder read this watermark).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.get().max(0.0) as usize
    }
    /// A solver run started on a worker.
    pub fn inflight_inc(&self) {
        self.inflight_solves.inc();
    }
    /// A solver run finished.
    pub fn inflight_dec(&self) {
        self.inflight_solves.dec();
    }
    /// Refresh the cache-size gauge (called with the sharded cache's
    /// aggregate `len`).
    pub fn set_cache_entries(&self, entries: usize) {
        self.cache_entries.set(entries as f64);
    }

    /// Record the (static) shard count of the equilibrium cache.
    pub fn set_cache_shards(&self, shards: usize) {
        self.cache_shards.set(shards as f64);
    }

    /// Count `n` cache entries restored from a warm snapshot.
    pub fn add_snapshot_restored(&self, n: usize) {
        self.snapshot_restored.add(n as u64);
    }
    /// Entries restored from a warm snapshot so far (tests poll this).
    pub fn snapshot_restored(&self) -> u64 {
        self.snapshot_restored.get()
    }
    /// Count one cache snapshot written to disk.
    pub fn inc_snapshot_writes(&self) {
        self.snapshot_writes.inc();
    }

    /// Count a numeric solve that found a warm-start hint.
    pub fn inc_warm_hint_hits(&self) {
        self.warm_hint_hits.inc();
    }
    /// Warm-start hint hits so far (tests poll this).
    pub fn warm_hint_hits(&self) -> u64 {
        self.warm_hint_hits.get()
    }
    /// Count a numeric solve that found no warm-start hint.
    pub fn inc_warm_hint_misses(&self) {
        self.warm_hint_misses.inc();
    }
    /// Count a warm-started solve that fell back to the cold bracket.
    pub fn inc_warm_fallbacks(&self) {
        self.warm_fallbacks.inc();
    }
    /// Warm-start cold fallbacks so far (tests poll this).
    pub fn warm_fallbacks(&self) -> u64 {
        self.warm_fallbacks.get()
    }

    /// Stamp every rendered sample of this engine's exposition with a
    /// `node="<id>"` label, so scrapes from a cluster's N engine
    /// processes stay distinguishable after aggregation. Rendering-only;
    /// call once at startup when the node learns its identity.
    pub fn set_node_label(&self, node_id: &str) {
        self.registry.set_const_labels(&[("node", node_id)]);
    }

    /// A connection was registered with a reactor.
    pub fn inc_connections_open(&self) {
        self.connections_open.inc();
    }
    /// A connection was closed and deregistered.
    pub fn dec_connections_open(&self) {
        self.connections_open.dec();
    }
    /// Connections currently open on the reactor pool (tests and the
    /// soak suite poll this).
    pub fn connections_open(&self) -> usize {
        self.connections_open.get().max(0.0) as usize
    }
    /// Count one self-pipe wakeup delivered to a reactor.
    pub fn inc_reactor_wakeups(&self) {
        self.reactor_wakeups.inc();
    }
    /// Per-reactor gauge of connections owned by reactor `reactor`,
    /// labeled `{reactor="<idx>"}`. Register-or-fetch: calling twice for
    /// the same index returns the same gauge.
    pub fn reactor_connections_gauge(&self, reactor: usize) -> Arc<Gauge> {
        let idx = reactor.to_string();
        self.registry.gauge_with(
            "share_reactor_connections",
            "NDJSON TCP connections currently owned by each reactor thread.",
            &[("reactor", idx.as_str())],
        )
    }

    /// Record one request's service latency (submission to reply).
    pub fn record_latency(&self, elapsed: Duration) {
        self.service_latency.record_duration(elapsed);
    }

    /// Record one solver run's wall-clock time under its mode label.
    pub fn record_solve_latency(&self, mode: SolveMode, elapsed: Duration) {
        let hist = match mode {
            SolveMode::Direct => &self.solve_direct,
            SolveMode::MeanField => &self.solve_mean_field,
            SolveMode::Numeric => &self.solve_numeric,
        };
        hist.record_duration(elapsed);
    }

    /// Record per-stage solver timings from a `*_timed` solve.
    pub fn record_stage_timings(&self, timings: &StageTimings) {
        self.stage1.record(timings.stage1_ns);
        self.stage2.record(timings.stage2_ns);
        self.stage3.record(timings.stage3_ns);
    }

    /// The service-latency histogram (submission to reply), for tests and
    /// in-process consumers that want more quantiles than the snapshot.
    pub fn service_histogram(&self) -> &LogHistogram {
        &self.service_latency
    }

    /// Point-in-time copy of every counter plus latency quantiles.
    pub fn snapshot(&self) -> StatsSnapshot {
        let hist = self.service_latency.snapshot();
        let to_us = |ns: u64| ns as f64 / 1e3;
        StatsSnapshot {
            requests: self.requests.get(),
            solves: self.solves.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            deduped: self.deduped.get(),
            rejected: self.rejected.get(),
            deadline_expired: self.deadline_expired.get(),
            invalid: self.invalid.get(),
            worker_panics: self.worker_panics.get(),
            worker_restarts: self.worker_restarts.get(),
            requests_shed: self.requests_shed.get(),
            requests_degraded: self.requests_degraded.get(),
            warm_hint_hits: self.warm_hint_hits.get(),
            warm_hint_misses: self.warm_hint_misses.get(),
            warm_fallbacks: self.warm_fallbacks.get(),
            latency_min_us: to_us(hist.min_ns),
            latency_mean_us: hist.mean_ns() / 1e3,
            latency_max_us: to_us(hist.max_ns),
            latency_p50_us: to_us(hist.quantile(0.50)),
            latency_p90_us: to_us(hist.quantile(0.90)),
            latency_p99_us: to_us(hist.quantile(0.99)),
            latency_p999_us: to_us(hist.quantile(0.999)),
        }
    }

    /// Render every metric family as a Prometheus text exposition (0.0.4),
    /// refreshing the derived gauges (uptime, cache hit ratio) first.
    pub fn render_prometheus(&self) -> String {
        self.uptime_seconds.set(self.start.elapsed().as_secs_f64());
        let hits = self.cache_hits.get() as f64;
        let lookups = hits + self.cache_misses.get() as f64;
        self.cache_hit_ratio
            .set(if lookups > 0.0 { hits / lookups } else { 0.0 });
        self.registry.render()
    }
}

/// A serializable point-in-time view of the engine's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Submissions accepted by the engine (including later rejections).
    pub requests: u64,
    /// Solver runs actually executed.
    pub solves: u64,
    /// Requests answered from the equilibrium cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight identical solve.
    pub deduped: u64,
    /// Requests rejected by queue backpressure.
    pub rejected: u64,
    /// Requests whose deadline expired before completion.
    pub deadline_expired: u64,
    /// Malformed requests.
    pub invalid: u64,
    /// Solver panics caught by the worker guard. Defaults to 0 when
    /// deserializing replies from pre-fault-tolerance servers.
    #[serde(default)]
    pub worker_panics: u64,
    /// Dead workers respawned by the supervisor.
    #[serde(default)]
    pub worker_restarts: u64,
    /// Requests rejected by the load-shedding admission gate.
    #[serde(default)]
    pub requests_shed: u64,
    /// Requests answered by the mean-field degradation ladder.
    #[serde(default)]
    pub requests_degraded: u64,
    /// Numeric solves that warm-started from a cached neighbor.
    #[serde(default)]
    pub warm_hint_hits: u64,
    /// Numeric solves with no cached neighbor to warm-start from.
    #[serde(default)]
    pub warm_hint_misses: u64,
    /// Warm-started solves whose narrowed bracket failed and re-ran cold.
    #[serde(default)]
    pub warm_fallbacks: u64,
    /// Minimum service latency (µs) over replied requests.
    pub latency_min_us: f64,
    /// Mean service latency (µs) over replied requests.
    pub latency_mean_us: f64,
    /// Maximum service latency (µs) over replied requests.
    pub latency_max_us: f64,
    /// Median service latency (µs), histogram-estimated (~3% error).
    /// Defaults to 0 when deserializing replies from older servers.
    #[serde(default)]
    pub latency_p50_us: f64,
    /// 90th-percentile service latency (µs), histogram-estimated.
    #[serde(default)]
    pub latency_p90_us: f64,
    /// 99th-percentile service latency (µs), histogram-estimated.
    #[serde(default)]
    pub latency_p99_us: f64,
    /// 99.9th-percentile service latency (µs), histogram-estimated.
    #[serde(default)]
    pub latency_p999_us: f64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} solves={} cache_hits={} cache_misses={} deduped={}",
            self.requests, self.solves, self.cache_hits, self.cache_misses, self.deduped
        )?;
        writeln!(
            f,
            "rejected={} deadline_expired={} invalid={} latency_us(min/mean/max)={:.1}/{:.1}/{:.1}",
            self.rejected,
            self.deadline_expired,
            self.invalid,
            self.latency_min_us,
            self.latency_mean_us,
            self.latency_max_us
        )?;
        writeln!(
            f,
            "worker_panics={} worker_restarts={} shed={} degraded={}",
            self.worker_panics, self.worker_restarts, self.requests_shed, self.requests_degraded
        )?;
        write!(
            f,
            "latency_us(p50/p90/p99/p99.9)={:.1}/{:.1}/{:.1}/{:.1}",
            self.latency_p50_us, self.latency_p90_us, self.latency_p99_us, self.latency_p999_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc_requests();
        m.inc_requests();
        m.inc_cache_hits();
        m.inc_deduped();
        m.inc_rejected();
        m.inc_deadline_expired();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.deduped, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_expired, 1);
    }

    #[test]
    fn latency_min_mean_max() {
        let m = Metrics::new();
        let s0 = m.snapshot();
        assert_eq!(s0.latency_min_us, 0.0);
        m.record_latency(Duration::from_micros(10));
        m.record_latency(Duration::from_micros(30));
        let s = m.snapshot();
        assert!((s.latency_min_us - 10.0).abs() < 1e-9);
        assert!((s.latency_max_us - 30.0).abs() < 1e-9);
        assert!((s.latency_mean_us - 20.0).abs() < 1e-9);
    }

    #[test]
    fn default_behaves_like_new() {
        // Regression: a derived Default used to leave the latency minimum
        // at 0 instead of u64::MAX, so the first recording could never
        // lower it and `latency_min_us` reported 0 forever.
        let m = Metrics::default();
        m.record_latency(Duration::from_micros(250));
        let s = m.snapshot();
        assert!(
            (s.latency_min_us - 250.0).abs() < 1e-9,
            "default-constructed metrics must track the true minimum, got {}",
            s.latency_min_us
        );
        assert_eq!(s.requests, 0);
    }

    #[test]
    fn quantiles_are_ordered_and_within_range() {
        let m = Metrics::new();
        for i in 1..=1000 {
            m.record_latency(Duration::from_micros(i));
        }
        let s = m.snapshot();
        assert!(s.latency_min_us <= s.latency_p50_us);
        assert!(s.latency_p50_us <= s.latency_p90_us);
        assert!(s.latency_p90_us <= s.latency_p99_us);
        assert!(s.latency_p99_us <= s.latency_p999_us);
        assert!(s.latency_p999_us <= s.latency_max_us);
        // p50 of uniform 1..=1000µs is ~500µs; histogram error is ~3%.
        assert!(
            (s.latency_p50_us - 500.0).abs() / 500.0 < 0.05,
            "p50 {} too far from 500",
            s.latency_p50_us
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.inc_requests();
        let s = m.snapshot();
        let js = serde_json::to_string(&s).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wire_compat_with_pre_quantile_stats_replies() {
        // Replies from servers predating the histogram carry no quantile
        // fields; they must still deserialize (defaulting to 0).
        let legacy = r#"{"requests":5,"solves":3,"cache_hits":1,"cache_misses":4,
            "deduped":0,"rejected":0,"deadline_expired":0,"invalid":0,
            "latency_min_us":10.0,"latency_mean_us":20.0,"latency_max_us":30.0}"#;
        let s: StatsSnapshot = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.requests, 5);
        assert_eq!(s.latency_p50_us, 0.0);
        assert_eq!(s.latency_p999_us, 0.0);
    }

    #[test]
    fn prometheus_exposition_is_valid_and_covers_families() {
        let m = Metrics::new();
        m.inc_requests();
        m.inc_cache_misses();
        m.record_latency(Duration::from_micros(150));
        m.record_solve_latency(SolveMode::Numeric, Duration::from_micros(120));
        m.record_stage_timings(&StageTimings {
            stage1_ns: 90_000,
            stage2_ns: 4_000,
            stage3_ns: 26_000,
        });
        m.queue_depth_inc();
        m.queue_depth_dec(Duration::from_micros(7));
        m.set_cache_entries(12);
        m.set_cache_shards(8);

        m.inc_worker_panics();
        m.inc_worker_restarts();
        m.inc_shed();
        m.inc_degraded();
        m.inc_fault_injection(FaultSite::WorkerPanic);
        m.inc_fault_injection(FaultSite::ConnDrop);

        m.inc_connections_open();
        m.inc_connections_open();
        m.dec_connections_open();
        assert_eq!(m.connections_open(), 1);
        m.inc_reactor_wakeups();
        let r0 = m.reactor_connections_gauge(0);
        r0.set(1.0);
        // Register-or-fetch: the same index must return the same gauge.
        assert_eq!(m.reactor_connections_gauge(0).get(), 1.0);

        let text = m.render_prometheus();
        let stats = share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
        assert!(stats.families >= 13, "families {stats:?}");
        assert!(text.contains("share_worker_panics_total 1"));
        assert!(text.contains("share_worker_restarts_total 1"));
        assert!(text.contains("share_requests_shed_total 1"));
        assert!(text.contains("share_requests_degraded_total 1"));
        assert!(text.contains("share_fault_injections_total{kind=\"worker_panic\"} 1"));
        assert!(text.contains("share_fault_injections_total{kind=\"conn_drop\"} 1"));
        assert!(text.contains("share_fault_injections_total{kind=\"divergence\"} 0"));
        assert!(stats.histograms >= 4);
        assert!(text.contains("# TYPE share_requests_total counter"));
        assert!(text.contains("share_requests_total 1"));
        assert!(text.contains("share_cache_entries 12"));
        assert!(text.contains("share_cache_shards 8"));
        assert!(text.contains("share_connections_open 1"));
        assert!(text.contains("share_reactor_wakeups_total 1"));
        assert!(text.contains("share_reactor_connections{reactor=\"0\"} 1"));
        assert!(text.contains("share_request_latency_seconds_bucket"));
        assert!(text.contains("share_solve_latency_seconds_bucket{mode=\"numeric\""));
        assert!(text.contains("share_solver_stage_seconds_bucket{stage=\"stage1\""));
        assert!(text.contains("share_solver_stage_seconds_count{stage=\"stage3\"} 1"));
        assert!(text.contains("share_uptime_seconds"));
    }

    #[test]
    fn node_label_stamps_exposition() {
        let m = Metrics::new();
        m.inc_requests();
        m.set_node_label("n2");
        let text = m.render_prometheus();
        assert!(text.contains("share_requests_total{node=\"n2\"} 1"));
        assert!(text.contains("share_fault_injections_total{node=\"n2\",kind=\"worker_panic\"} 0"));
        share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
    }

    #[test]
    fn concurrent_recording_keeps_invariants() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500_u64 {
                        m.inc_requests();
                        m.record_latency(Duration::from_nanos(1_000 + t * 100_000 + i * 13));
                        if i % 2 == 0 {
                            m.inc_cache_hits();
                        } else {
                            m.inc_cache_misses();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.requests, 4_000);
        assert_eq!(s.cache_hits + s.cache_misses, 4_000);
        // Histogram bucket totals must equal the recorded count.
        let hist = m.service_histogram().snapshot();
        assert_eq!(hist.count, 4_000);
        assert_eq!(hist.bucket_total(), 4_000);
        // Quantiles monotone, min <= mean <= max.
        assert!(s.latency_min_us <= s.latency_mean_us);
        assert!(s.latency_mean_us <= s.latency_max_us);
        assert!(s.latency_p50_us <= s.latency_p90_us);
        assert!(s.latency_p90_us <= s.latency_p99_us);
    }
}
