//! Lock-free serving metrics.
//!
//! All counters are relaxed atomics updated on the request path; a
//! [`StatsSnapshot`] is a consistent-enough point-in-time copy exposed via
//! the wire `stats` request and printed on shutdown.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters shared by the engine, its workers and the servers.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    solves: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    deduped: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    invalid: AtomicU64,
    lat_count: AtomicU64,
    lat_sum_ns: AtomicU64,
    lat_min_ns: AtomicU64,
    lat_max_ns: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        let m = Metrics::default();
        m.lat_min_ns.store(u64::MAX, Ordering::Relaxed);
        m
    }

    /// Count an accepted submission.
    pub fn inc_requests(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a completed solver run.
    pub fn inc_solves(&self) {
        self.solves.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a cache hit.
    pub fn inc_cache_hits(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a cache miss.
    pub fn inc_cache_misses(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a request coalesced onto an in-flight solve.
    pub fn inc_deduped(&self) {
        self.deduped.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a backpressure rejection.
    pub fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a deadline expiry.
    pub fn inc_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }
    /// Count a malformed request.
    pub fn inc_invalid(&self) {
        self.invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's service latency (submission to reply).
    pub fn record_latency(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.lat_count.fetch_add(1, Ordering::Relaxed);
        self.lat_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.lat_min_ns.fetch_min(ns, Ordering::Relaxed);
        self.lat_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let count = self.lat_count.load(Ordering::Relaxed);
        let sum = self.lat_sum_ns.load(Ordering::Relaxed);
        let min = self.lat_min_ns.load(Ordering::Relaxed);
        let max = self.lat_max_ns.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            latency_min_us: if count == 0 { 0.0 } else { min as f64 / 1e3 },
            latency_mean_us: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64 / 1e3
            },
            latency_max_us: if count == 0 { 0.0 } else { max as f64 / 1e3 },
        }
    }
}

/// A serializable point-in-time view of the engine's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Submissions accepted by the engine (including later rejections).
    pub requests: u64,
    /// Solver runs actually executed.
    pub solves: u64,
    /// Requests answered from the equilibrium cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight identical solve.
    pub deduped: u64,
    /// Requests rejected by queue backpressure.
    pub rejected: u64,
    /// Requests whose deadline expired before completion.
    pub deadline_expired: u64,
    /// Malformed requests.
    pub invalid: u64,
    /// Minimum service latency (µs) over replied requests.
    pub latency_min_us: f64,
    /// Mean service latency (µs) over replied requests.
    pub latency_mean_us: f64,
    /// Maximum service latency (µs) over replied requests.
    pub latency_max_us: f64,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} solves={} cache_hits={} cache_misses={} deduped={}",
            self.requests, self.solves, self.cache_hits, self.cache_misses, self.deduped
        )?;
        write!(
            f,
            "rejected={} deadline_expired={} invalid={} latency_us(min/mean/max)={:.1}/{:.1}/{:.1}",
            self.rejected,
            self.deadline_expired,
            self.invalid,
            self.latency_min_us,
            self.latency_mean_us,
            self.latency_max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc_requests();
        m.inc_requests();
        m.inc_cache_hits();
        m.inc_deduped();
        m.inc_rejected();
        m.inc_deadline_expired();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.deduped, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_expired, 1);
    }

    #[test]
    fn latency_min_mean_max() {
        let m = Metrics::new();
        let s0 = m.snapshot();
        assert_eq!(s0.latency_min_us, 0.0);
        m.record_latency(Duration::from_micros(10));
        m.record_latency(Duration::from_micros(30));
        let s = m.snapshot();
        assert!((s.latency_min_us - 10.0).abs() < 1e-9);
        assert!((s.latency_max_us - 30.0).abs() < 1e-9);
        assert!((s.latency_mean_us - 20.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.inc_requests();
        let s = m.snapshot();
        let js = serde_json::to_string(&s).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&js).unwrap();
        assert_eq!(back, s);
    }
}
