//! A resilient blocking TCP client for the wire protocol.
//!
//! Supports both call-and-wait usage ([`Client::call`]) and explicit
//! pipelining ([`Client::send`] many requests, then [`Client::recv`] the
//! responses as they stream back, matching on `id`).
//!
//! ## Resilience
//!
//! - **Socket timeouts**: every stream carries read/write timeouts
//!   (default 30 s), so a server that dies mid-reply surfaces as a
//!   `TimedOut`/`WouldBlock` error instead of blocking the caller forever.
//! - **Retry with backoff**: with a [`RetryPolicy`] configured,
//!   [`Client::call`] retries transient failures — connection I/O errors,
//!   `worker_panic`, `deadline_expired`, and `overloaded` (honoring the
//!   server's `retry_after_ms` hint) — under capped exponential backoff
//!   with deterministic seeded jitter.
//! - **Reconnect**: an I/O failure marks the connection dead; the next
//!   attempt dials the server again (the resolved addresses are kept), so
//!   a dropped connection costs one retry, not the client.
//! - **Failover**: [`Client::connect_multi`] takes several endpoints;
//!   dials rotate from the last-good address, so a dead server shifts
//!   traffic to the next one instead of failing the client.
//!
//! Retry activity is visible two ways: [`Client::client_stats`] for
//! programmatic access, and [`Client::render_prometheus`] for a validated
//! text exposition (`share_client_retries_total`,
//! `share_client_reconnects_total`, `share_client_giveups_total`, and the
//! `share_client_retry_backoff_seconds` histogram).

use crate::fault::splitmix64;
use crate::metrics::StatsSnapshot;
use crate::protocol::{RequestBody, ResponseBody, WireRequest, WireResponse, WireTrace};
use crate::spec::SolveSpec;
use share_obs::hist::LogHistogram;
use share_obs::metrics::{Counter, Registry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Retry policy for transient failures: capped exponential backoff with
/// deterministic seeded jitter (attempt `n` sleeps
/// `min(base·2ⁿ, max)·(1 + jitter·u)` with `u ∈ [0,1)` drawn from `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]` added on top of the exponential term.
    pub jitter: f64,
    /// Seed of the jitter stream — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt.min(20)))
            .min(self.max_backoff);
        let u = (splitmix64(
            self.seed ^ (0xB0FF ^ u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ) >> 11) as f64
            / (1u64 << 53) as f64;
        exp.mul_f64(1.0 + self.jitter.clamp(0.0, 1.0) * u)
    }

    /// The backoff floor derived from a server `retry_after_ms` hint:
    /// the hint stretched by the policy's jitter fraction with a draw from
    /// a *different* seeded stream than [`RetryPolicy::backoff`], so a
    /// crowd of clients told "retry after 500 ms" fans out over
    /// `[500, 500·(1+jitter)]` instead of stampeding the server in
    /// lockstep.
    fn hint_floor(&self, ms: u64, attempt: u32) -> Duration {
        let u = (splitmix64(
            self.seed ^ (0x41F7 ^ u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ) >> 11) as f64
            / (1u64 << 53) as f64;
        Duration::from_millis(ms).mul_f64(1.0 + self.jitter.clamp(0.0, 1.0) * u)
    }
}

/// Client construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Socket read timeout; `None` restores the old block-forever reads.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Retry policy for [`Client::call`]; `None` fails fast on the first
    /// error (but timeouts still apply).
    pub retry: Option<RetryPolicy>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: None,
        }
    }
}

impl ClientConfig {
    /// The default config with the default [`RetryPolicy`] enabled.
    pub fn with_retries() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            ..Self::default()
        }
    }
}

/// Counters of the client's own resilience activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Top-level calls issued through [`Client::call`].
    pub requests: u64,
    /// Attempts beyond the first, across all calls.
    pub retries: u64,
    /// Times a dead connection was re-dialed.
    pub reconnects: u64,
    /// Calls that exhausted their retry budget without success.
    pub giveups: u64,
    /// Total time spent sleeping in backoff, in milliseconds.
    pub backoff_ms_total: u64,
    /// Dials that landed on a different address than the preferred one
    /// (multi-address failover).
    pub failovers: u64,
}

struct ClientMetrics {
    registry: Registry,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    giveups: Arc<Counter>,
    failovers: Arc<Counter>,
    backoff: Arc<LogHistogram>,
}

impl ClientMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let retries = registry.counter(
            "share_client_retries_total",
            "Call attempts beyond the first (transient failures retried).",
        );
        let reconnects = registry.counter(
            "share_client_reconnects_total",
            "Dead connections re-dialed before a retry.",
        );
        let giveups = registry.counter(
            "share_client_giveups_total",
            "Calls that exhausted the retry budget without success.",
        );
        let failovers = registry.counter(
            "share_client_failovers_total",
            "Dials that fell back to a non-preferred address.",
        );
        let backoff = registry.histogram(
            "share_client_retry_backoff_seconds",
            "Backoff slept before each retry.",
        );
        Self {
            registry,
            retries,
            reconnects,
            giveups,
            failovers,
            backoff,
        }
    }
}

/// What a failed attempt means for the retry loop.
enum Attempt {
    /// Final answer (success or a non-retryable error response).
    Done(io::Result<WireResponse>),
    /// Transient wire error; the optional hint is the server's
    /// `retry_after_ms`.
    RetryWire(WireResponse, Option<u64>),
    /// Transient I/O error; the connection is dead and must be re-dialed.
    RetryIo(io::Error),
}

/// `true` for I/O failures that a fresh connection can plausibly cure.
fn io_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Wire error codes worth retrying: the request was fine, the serving
/// attempt failed. `node_unavailable` comes from a cluster router whose
/// owning node just died — by the retry, the health checker has usually
/// evicted it and the ring routes the key to a live node.
fn wire_transient(code: &str) -> bool {
    matches!(
        code,
        "worker_panic" | "overloaded" | "deadline_expired" | "node_unavailable"
    )
}

/// A connected wire-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    config: ClientConfig,
    /// Resolved server addresses, kept for reconnects and failover.
    addrs: Vec<SocketAddr>,
    /// Index into `addrs` of the last address that accepted a connection;
    /// dials start here and rotate, so a dead primary stops costing a
    /// failed connect on every reconnect.
    preferred: usize,
    /// Set when an I/O error poisoned the connection; the next retrying
    /// call re-dials before sending.
    dead: bool,
    stats: ClientStats,
    metrics: ClientMetrics,
}

impl Client {
    /// Connect with the default config: 30 s socket timeouts, no retries.
    ///
    /// # Errors
    /// Propagates connection I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit [`ClientConfig`].
    ///
    /// # Errors
    /// Propagates connection and address-resolution I/O errors.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        Self::from_addrs(addrs, config)
    }

    /// Connect to the first reachable of several endpoints (each resolved
    /// independently), with failover: if the connected address later dies,
    /// reconnects rotate through the remaining addresses instead of
    /// re-dialing the dead one, and `share_client_failovers_total` counts
    /// each dial that lands off the preferred address.
    ///
    /// Endpoints that fail to *resolve* are skipped (a cluster client must
    /// come up while one DNS name is broken); connecting fails only when no
    /// endpoint yields a reachable address.
    ///
    /// # Errors
    /// The last connection error when every address is unreachable, or
    /// `InvalidInput` when no endpoint resolves at all.
    pub fn connect_multi<A: ToSocketAddrs>(
        endpoints: &[A],
        config: ClientConfig,
    ) -> io::Result<Self> {
        let mut addrs: Vec<SocketAddr> = Vec::new();
        for ep in endpoints {
            if let Ok(resolved) = ep.to_socket_addrs() {
                addrs.extend(resolved);
            }
        }
        Self::from_addrs(addrs, config)
    }

    fn from_addrs(addrs: Vec<SocketAddr>, config: ClientConfig) -> io::Result<Self> {
        let (reader, writer, preferred) = Self::dial(&addrs, 0, &config)?;
        let metrics = ClientMetrics::new();
        let mut stats = ClientStats::default();
        if preferred != 0 {
            stats.failovers += 1;
            metrics.failovers.inc();
        }
        Ok(Self {
            reader,
            writer,
            next_id: 1,
            config,
            addrs,
            preferred,
            dead: false,
            stats,
            metrics,
        })
    }

    /// Try each address once, starting at `start` and rotating, returning
    /// the streams and the index that accepted.
    fn dial(
        addrs: &[SocketAddr],
        start: usize,
        config: &ClientConfig,
    ) -> io::Result<(BufReader<TcpStream>, TcpStream, usize)> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no server addresses resolved",
            ));
        }
        let mut last_err = None;
        for i in 0..addrs.len() {
            let idx = (start + i) % addrs.len();
            match TcpStream::connect(addrs[idx]) {
                Ok(writer) => {
                    writer.set_read_timeout(config.read_timeout)?;
                    writer.set_write_timeout(config.write_timeout)?;
                    let reader = BufReader::new(writer.try_clone()?);
                    return Ok((reader, writer, idx));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("non-empty address list"))
    }

    /// Drop the (possibly poisoned) connection and dial again, starting
    /// from the last-good address and failing over to the others. Any
    /// buffered partial line is discarded with the old reader, so the
    /// stream realigns on a clean line boundary.
    fn reconnect(&mut self) -> io::Result<()> {
        let (reader, writer, idx) = Self::dial(&self.addrs, self.preferred, &self.config)?;
        if idx != self.preferred {
            self.stats.failovers += 1;
            self.metrics.failovers.inc();
        }
        self.preferred = idx;
        self.reader = reader;
        self.writer = writer;
        self.dead = false;
        self.stats.reconnects += 1;
        self.metrics.reconnects.inc();
        Ok(())
    }

    /// Send one request without waiting; returns the id assigned to it.
    ///
    /// # Errors
    /// Propagates write I/O errors.
    pub fn send(&mut self, body: RequestBody) -> io::Result<u64> {
        self.send_traced(body, None)
    }

    /// [`send`](Self::send) with an optional wire-form trace context
    /// attached (the cluster router stamps its forward span here).
    ///
    /// # Errors
    /// Propagates write I/O errors.
    pub fn send_traced(&mut self, body: RequestBody, trace: Option<&str>) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let line = serde_json::to_string(&WireRequest {
            id,
            trace: trace.map(str::to_string),
            body,
        })
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Receive the next response line (whatever its id).
    ///
    /// # Errors
    /// I/O errors (including `TimedOut`/`WouldBlock` once the read timeout
    /// elapses), `UnexpectedEof` on a closed connection, `InvalidData` on
    /// an unparseable response.
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
    }

    /// A cheap, non-blocking liveness hint for an *idle* connection: peek
    /// the socket without consuming. `WouldBlock` (nothing pending) means
    /// the connection looks alive; EOF, any error, or unsolicited bytes
    /// (a reply nobody is waiting for — the stream is desynchronized)
    /// mean it must not be reused. Connection pools call this before
    /// handing out a pooled client, so a peer restart doesn't poison the
    /// first forward after it.
    pub fn probe_liveness(&self) -> bool {
        if self.dead {
            return false;
        }
        if self.writer.set_nonblocking(true).is_err() {
            return false;
        }
        let mut buf = [0u8; 1];
        let alive = matches!(
            self.writer.peek(&mut buf),
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock
        );
        self.writer.set_nonblocking(false).is_ok() && alive
    }

    /// One send-and-wait attempt, classified for the retry loop.
    fn attempt(&mut self, body: RequestBody, trace: Option<&str>) -> Attempt {
        if self.dead {
            if let Err(e) = self.reconnect() {
                return Attempt::RetryIo(e);
            }
        }
        let once = (|| -> io::Result<WireResponse> {
            let id = self.send_traced(body, trace)?;
            loop {
                let resp = self.recv()?;
                if resp.id == id {
                    return Ok(resp);
                }
            }
        })();
        match once {
            Err(e) => {
                self.dead = true;
                if io_transient(e.kind()) {
                    Attempt::RetryIo(e)
                } else {
                    Attempt::Done(Err(e))
                }
            }
            Ok(resp) => match &resp.body {
                ResponseBody::Error {
                    code,
                    retry_after_ms,
                    ..
                } if wire_transient(code) => {
                    let hint = *retry_after_ms;
                    Attempt::RetryWire(resp, hint)
                }
                _ => Attempt::Done(Ok(resp)),
            },
        }
    }

    /// Send a request and block until *its* response arrives (`call`
    /// expects exclusive use of the connection). With a [`RetryPolicy`]
    /// configured, transient failures — I/O errors (the connection is
    /// re-dialed), `worker_panic`, `deadline_expired`, and `overloaded`
    /// (sleeping at least the server's `retry_after_ms` hint) — are
    /// retried under capped jittered backoff; the budget exhausted, the
    /// last outcome is returned as-is.
    ///
    /// # Errors
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call(&mut self, body: RequestBody) -> io::Result<WireResponse> {
        self.call_traced(body, None)
    }

    /// [`call`](Self::call) with an optional wire-form trace context: every
    /// attempt (including retries) carries it, so the serving hop always
    /// links back to the caller's span.
    ///
    /// # Errors
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call_traced(
        &mut self,
        body: RequestBody,
        trace: Option<String>,
    ) -> io::Result<WireResponse> {
        self.stats.requests += 1;
        let Some(policy) = self.config.retry.clone() else {
            return match self.attempt(body, trace.as_deref()) {
                Attempt::Done(r) => r,
                Attempt::RetryWire(resp, _) => Ok(resp),
                Attempt::RetryIo(e) => Err(e),
            };
        };
        let mut attempt_no = 0u32;
        loop {
            let outcome = self.attempt(body.clone(), trace.as_deref());
            let (last_result, hint) = match outcome {
                Attempt::Done(r) => return r,
                Attempt::RetryWire(resp, hint) => (Ok(resp), hint),
                Attempt::RetryIo(e) => (Err(e), None),
            };
            if attempt_no >= policy.max_retries {
                self.stats.giveups += 1;
                self.metrics.giveups.inc();
                return last_result;
            }
            let mut backoff = policy.backoff(attempt_no);
            if let Some(ms) = hint {
                backoff = backoff.max(policy.hint_floor(ms, attempt_no));
            }
            self.stats.retries += 1;
            self.stats.backoff_ms_total += backoff.as_millis().min(u64::MAX as u128) as u64;
            self.metrics.retries.inc();
            self.metrics.backoff.record_duration(backoff);
            std::thread::sleep(backoff);
            attempt_no += 1;
        }
    }

    /// Solve one market and wait for the result.
    ///
    /// # Errors
    /// Propagates [`Client::call`] errors.
    pub fn solve(&mut self, spec: SolveSpec) -> io::Result<WireResponse> {
        self.call(RequestBody::Solve {
            spec: spec.spec,
            mode: spec.mode,
            deadline_ms: spec.deadline_ms,
        })
    }

    /// Fetch the server's metrics snapshot.
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but stats.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(RequestBody::Stats)?.body {
            ResponseBody::Stats { stats } => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats response, got {other:?}"),
            )),
        }
    }

    /// Fetch the server's full Prometheus text exposition (format 0.0.4).
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but metrics.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        match self.call(RequestBody::Metrics)?.body {
            ResponseBody::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics response, got {other:?}"),
            )),
        }
    }

    /// Fetch kept traces from the server's tail-sampled ring: the trace
    /// named by `trace_id` (32 hex digits), and/or the `slowest` slowest.
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but traces
    /// (e.g. a pre-tracing server that doesn't know the request kind).
    pub fn trace(
        &mut self,
        trace_id: Option<String>,
        slowest: Option<usize>,
    ) -> io::Result<Vec<WireTrace>> {
        match self.call(RequestBody::Trace { trace_id, slowest })?.body {
            ResponseBody::Trace { traces } => Ok(traces),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected trace response, got {other:?}"),
            )),
        }
    }

    /// Ask the server to shut down gracefully; returns its acknowledgement.
    ///
    /// # Errors
    /// Propagates [`Client::call`] errors.
    pub fn shutdown_server(&mut self) -> io::Result<WireResponse> {
        self.call(RequestBody::Shutdown)
    }

    /// Fetch the server's cluster identity and cache occupancy.
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but node info
    /// (e.g. a pre-cluster server that doesn't know the request kind).
    pub fn node_info(&mut self) -> io::Result<crate::engine::NodeInfo> {
        match self.call(RequestBody::NodeInfo)?.body {
            ResponseBody::NodeInfo { info } => Ok(info),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected node_info response, got {other:?}"),
            )),
        }
    }

    /// Ask the server to write its warm-cache snapshot now; returns the
    /// entry count written.
    ///
    /// # Errors
    /// `InvalidData` on an unexpected response kind, `Other` when the
    /// server reports a snapshot failure.
    pub fn snapshot_server(&mut self) -> io::Result<usize> {
        match self.call(RequestBody::Snapshot)?.body {
            ResponseBody::Snapshot { entries } => Ok(entries),
            ResponseBody::Error { message, .. } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected snapshot response, got {other:?}"),
            )),
        }
    }

    /// The address of the currently preferred (last successfully dialed)
    /// server.
    pub fn connected_addr(&self) -> Option<SocketAddr> {
        self.addrs.get(self.preferred).copied()
    }

    /// This client's own resilience counters (retries, reconnects, ...).
    pub fn client_stats(&self) -> ClientStats {
        self.stats
    }

    /// Render the client-side resilience metrics (retry/reconnect/giveup
    /// counters and the backoff histogram) as a Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.metrics.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter: 0.2,
            seed: 42,
        };
        let seq: Vec<Duration> = (0..8).map(|n| p.backoff(n)).collect();
        // Same policy, same schedule.
        assert_eq!(seq, (0..8).map(|n| p.backoff(n)).collect::<Vec<_>>());
        // Exponential base: each step's floor doubles until the cap.
        assert!(seq[0] >= Duration::from_millis(10) && seq[0] <= Duration::from_millis(12));
        assert!(seq[1] >= Duration::from_millis(20) && seq[1] <= Duration::from_millis(24));
        assert!(seq[2] >= Duration::from_millis(40) && seq[2] <= Duration::from_millis(48));
        // Capped (plus at most the jitter fraction).
        for d in &seq[5..] {
            assert!(
                *d <= Duration::from_millis(240),
                "{d:?} exceeds jittered cap"
            );
        }
        // A different seed jitters differently.
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(
            (0..8).map(|n| p.backoff(n)).collect::<Vec<_>>(),
            (0..8).map(|n| q.backoff(n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hint_floor_jitters_above_the_server_hint() {
        let p = RetryPolicy {
            jitter: 0.2,
            seed: 7,
            ..RetryPolicy::default()
        };
        let floors: Vec<Duration> = (0..4).map(|n| p.hint_floor(500, n)).collect();
        for f in &floors {
            assert!(*f >= Duration::from_millis(500), "{f:?} undercuts the hint");
            assert!(
                *f <= Duration::from_millis(600),
                "{f:?} exceeds hint·(1+jitter)"
            );
        }
        // Different attempts (and different seeds) land on different
        // points, so hinted clients fan out instead of stampeding.
        assert!(floors.windows(2).any(|w| w[0] != w[1]));
        let q = RetryPolicy { seed: 8, ..p };
        assert_ne!(p.hint_floor(500, 0), q.hint_floor(500, 0));
    }

    #[test]
    fn transient_classification_matches_the_failure_modes() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(io_transient(kind), "{kind:?} must be retryable");
        }
        assert!(!io_transient(io::ErrorKind::InvalidData));
        assert!(!io_transient(io::ErrorKind::PermissionDenied));

        for code in [
            "worker_panic",
            "overloaded",
            "deadline_expired",
            "node_unavailable",
        ] {
            assert!(wire_transient(code), "{code} must be retryable");
        }
        assert!(!wire_transient("invalid_request"));
        assert!(!wire_transient("solver_error"));
        assert!(!wire_transient("shutting_down"));
    }

    #[test]
    fn connect_multi_fails_over_to_a_live_address() {
        use std::net::TcpListener;
        // A port that was bound and released: connecting to it refuses.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap();
        let client =
            Client::connect_multi(&[dead_addr, live_addr], ClientConfig::default()).unwrap();
        assert_eq!(client.connected_addr(), Some(live_addr));
        assert_eq!(client.client_stats().failovers, 1);
        assert!(client
            .render_prometheus()
            .contains("share_client_failovers_total 1"));
    }

    #[test]
    fn connect_multi_with_no_reachable_address_errors() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(Client::connect_multi(&[dead], ClientConfig::default()).is_err());
        let empty: &[std::net::SocketAddr] = &[];
        let err = Client::connect_multi(empty, ClientConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn client_metrics_render_validates() {
        let m = ClientMetrics::new();
        m.retries.inc();
        m.backoff.record_duration(Duration::from_millis(15));
        let text = m.registry.render();
        let stats = share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
        assert!(stats.families >= 4);
        assert!(text.contains("share_client_retries_total 1"));
        assert!(text.contains("share_client_retry_backoff_seconds_bucket"));
    }
}
