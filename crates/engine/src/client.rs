//! A minimal blocking TCP client for the wire protocol.
//!
//! Supports both call-and-wait usage ([`Client::call`]) and explicit
//! pipelining ([`Client::send`] many requests, then [`Client::recv`] the
//! responses as they stream back, matching on `id`).

use crate::metrics::StatsSnapshot;
use crate::protocol::{RequestBody, ResponseBody, WireRequest, WireResponse};
use crate::spec::SolveSpec;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected wire-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    /// Propagates connection I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Send one request without waiting; returns the id assigned to it.
    ///
    /// # Errors
    /// Propagates write I/O errors.
    pub fn send(&mut self, body: RequestBody) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let line = serde_json::to_string(&WireRequest { id, body })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Receive the next response line (whatever its id).
    ///
    /// # Errors
    /// I/O errors, `UnexpectedEof` on a closed connection, `InvalidData` on
    /// an unparseable response.
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
    }

    /// Send a request and block until *its* response arrives (skipping any
    /// earlier pipelined responses is the caller's concern — `call` expects
    /// exclusive use of the connection).
    ///
    /// # Errors
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call(&mut self, body: RequestBody) -> io::Result<WireResponse> {
        let id = self.send(body)?;
        loop {
            let resp = self.recv()?;
            if resp.id == id {
                return Ok(resp);
            }
        }
    }

    /// Solve one market and wait for the result.
    ///
    /// # Errors
    /// Propagates [`Client::call`] errors.
    pub fn solve(&mut self, spec: SolveSpec) -> io::Result<WireResponse> {
        self.call(RequestBody::Solve {
            spec: spec.spec,
            mode: spec.mode,
            deadline_ms: spec.deadline_ms,
        })
    }

    /// Fetch the server's metrics snapshot.
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but stats.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(RequestBody::Stats)?.body {
            ResponseBody::Stats { stats } => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats response, got {other:?}"),
            )),
        }
    }

    /// Fetch the server's full Prometheus text exposition (format 0.0.4).
    ///
    /// # Errors
    /// `InvalidData` when the server answers with anything but metrics.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        match self.call(RequestBody::Metrics)?.body {
            ResponseBody::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics response, got {other:?}"),
            )),
        }
    }

    /// Ask the server to shut down gracefully; returns its acknowledgement.
    ///
    /// # Errors
    /// Propagates [`Client::call`] errors.
    pub fn shutdown_server(&mut self) -> io::Result<WireResponse> {
        self.call(RequestBody::Shutdown)
    }
}
