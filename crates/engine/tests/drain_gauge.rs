//! Regression test: `share_connections_open` must return to zero when a
//! drain force-closes a stalled connection.
//!
//! A connection whose peer never receives its reply (here: the engine has
//! zero workers, so a submitted solve never completes and the connection
//! keeps `inflight > 0` forever) cannot drain gracefully. The reactor's
//! shutdown path force-closes it after the drain grace period — and that
//! close path must decrement the open-connections gauge exactly like a
//! graceful close, or every drain under load leaks a permanent unit of
//! `share_connections_open` and capacity dashboards drift upward forever.

#![cfg(unix)]

use share_engine::{serve_tcp, Engine, EngineConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    ok()
}

#[test]
fn force_closed_drain_decrements_connections_open() {
    // No workers: submitted solves queue forever, pinning the connection
    // in the "replies owed" state that only a force-close can clear.
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 0,
        ..EngineConfig::default()
    }));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(b"{\"kind\":\"solve\",\"id\":1,\"spec\":{\"m\":5,\"seed\":1}}\n")
        .expect("send solve");
    stalled.flush().expect("flush");

    assert!(
        wait_until(Duration::from_secs(2), || engine
            .metrics()
            .connections_open()
            == 1),
        "connection never registered; gauge at {}",
        engine.metrics().connections_open()
    );

    // Drain. The solve can never complete, so the reactor must force-close
    // the connection after the grace period (5s) — and the gauge must come
    // back to zero.
    server.stop();
    assert_eq!(
        engine.metrics().connections_open(),
        0,
        "force-close during drain leaked the open-connections gauge"
    );
    let text = engine.render_prometheus();
    assert!(
        text.contains("share_connections_open 0"),
        "exposition disagrees with the gauge:\n{text}"
    );
    // Keep the stalled client socket alive until after the drain so the
    // peer really was "stalled", not closed.
    drop(stalled);
    engine.shutdown();
}
