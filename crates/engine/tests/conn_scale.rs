//! Soak suite for the event-loop connection layer: a thousand concurrent
//! NDJSON connections (mixed idle, pipelined, and batch) against one
//! engine, on a fixed pool of reactor threads.
//!
//! The suite is one `#[test]` on purpose: it asserts on the *process*
//! thread count, which must not be perturbed by sibling tests running
//! concurrently in the same binary.
#![cfg(unix)]

use share_engine::{
    serve_tcp_with, Engine, EngineConfig, MarketSpec, RequestBody, SolveMode, SolveSpec,
    WireRequest, WireResponse,
};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Raise the soft `RLIMIT_NOFILE` to its hard ceiling so the suite can
/// open ~2,000 descriptors (client + server end per connection) under the
/// common 1,024 default. Returns the soft limit in effect afterwards.
mod rlimit {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const RLIMIT_NOFILE: i32 = 8;

    pub fn raise_nofile() -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 1024;
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
                return want.cur;
            }
        }
        lim.cur
    }
}

/// Threads in this process, from `/proc/self/status` (Linux only; the
/// thread-count assertion is skipped elsewhere).
#[cfg(target_os = "linux")]
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[cfg(not(target_os = "linux"))]
fn process_threads() -> Option<usize> {
    None
}

fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "connect kept failing under load: {e}"
                );
                thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn solve_line(id: u64, m: usize, seed: u64) -> String {
    let req = WireRequest {
        id,
        trace: None,
        body: RequestBody::Solve {
            spec: MarketSpec::Seeded {
                m,
                seed,
                n_pieces: None,
                v: None,
            },
            mode: SolveMode::Direct,
            deadline_ms: None,
        },
    };
    serde_json::to_string(&req).expect("serializable request")
}

fn batch_line(id: u64, seeds: &[u64]) -> String {
    let req = WireRequest {
        id,
        trace: None,
        body: RequestBody::Batch {
            requests: seeds
                .iter()
                .map(|&s| SolveSpec::seeded(6, s, SolveMode::Direct))
                .collect(),
        },
    };
    serde_json::to_string(&req).expect("serializable request")
}

/// Drive one pipelined connection: write `ids.len()` solve requests
/// back-to-back, then read exactly that many responses (out-of-order is
/// fine — correlation is by id) and verify nothing extra arrives.
fn drive_pipelined(stream: &mut TcpStream, ids: &[u64]) {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut payload = String::new();
    for &id in ids {
        // A small seed pool keeps solves cheap and exercises both the
        // cache and in-flight dedup under connection pressure.
        payload.push_str(&solve_line(id, 5 + (id % 3) as usize, id % 4));
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut seen = HashSet::new();
    for _ in 0..ids.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply before timeout");
        let resp: WireResponse = serde_json::from_str(line.trim()).expect("valid response line");
        assert!(resp.is_ok(), "solve failed: {line}");
        assert!(seen.insert(resp.id), "duplicate reply for id {}", resp.id);
    }
    let expected: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(seen, expected, "every request answered exactly once");
    // Exactly-one-reply: after the expected responses the stream must go
    // quiet (a short timeout read sees no extra bytes).
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut extra = String::new();
    match reader.read_line(&mut extra) {
        Ok(0) => {} // server closed; also fine
        Ok(_) => panic!("unsolicited extra reply: {extra}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected read error: {e}"
        ),
    }
}

/// Drive one batch connection: a single `batch` request whose reply must
/// carry one result per sub-request, in position order.
fn drive_batch(stream: &mut TcpStream, id: u64) {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let seeds = [id % 5, (id + 1) % 5, id % 5];
    let mut line = batch_line(id, &seeds);
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("batch reply");
    let resp: WireResponse = serde_json::from_str(reply.trim()).expect("valid response line");
    assert_eq!(resp.id, id);
    match resp.body {
        share_engine::ResponseBody::Batch { results } => {
            assert_eq!(results.len(), seeds.len());
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.id, i as u64, "sub-replies keep position order");
                assert!(r.is_ok(), "batch entry failed: {r:?}");
            }
        }
        other => panic!("expected batch response, got {other:?}"),
    }
}

#[test]
fn soak_thousand_connections_fixed_thread_pool() {
    const REACTORS: usize = 2;
    const WORKERS: usize = 2;

    let limit = rlimit::raise_nofile();
    // Two descriptors per connection (client + server end) plus headroom
    // for the harness; scale down gracefully on tight limits.
    let total = (1000usize)
        .min(((limit.saturating_sub(128)) / 2) as usize)
        .max(64);

    let baseline_threads = process_threads();

    let engine = Arc::new(Engine::start(EngineConfig {
        workers: WORKERS,
        queue_capacity: 4096,
        ..EngineConfig::default()
    }));
    let server = serve_tcp_with(Arc::clone(&engine), "127.0.0.1:0", REACTORS).expect("bind");
    let addr = server.local_addr();

    // Phase 1: open every connection. Most stay idle; every 10th runs a
    // pipelined solve burst and every 25th a batch.
    let mut idle: Vec<TcpStream> = Vec::new();
    let mut pipelined: Vec<(TcpStream, Vec<u64>)> = Vec::new();
    let mut batches: Vec<(TcpStream, u64)> = Vec::new();
    for i in 0..total {
        let stream = connect_with_retry(addr);
        if i % 25 == 0 {
            batches.push((stream, i as u64));
        } else if i % 10 == 0 {
            let base = (i as u64) * 10;
            pipelined.push((stream, vec![base, base + 1, base + 2, base + 3]));
        } else {
            idle.push(stream);
        }
    }

    // Phase 2: drive every active connection from a small worker pool
    // (the point is thousands of *server* connections on a handful of
    // threads; the client side stays bounded too).
    let active_requests: usize =
        pipelined.iter().map(|(_, ids)| ids.len()).sum::<usize>() + batches.len() * 3;
    let mut work: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for (mut stream, ids) in pipelined.drain(..) {
        work.push(Box::new(move || drive_pipelined(&mut stream, &ids)));
    }
    let mut driven_conns: Vec<Box<dyn FnOnce() -> TcpStream + Send>> = Vec::new();
    for (mut stream, id) in batches.drain(..) {
        driven_conns.push(Box::new(move || {
            drive_batch(&mut stream, id);
            stream
        }));
    }
    let drivers = 8;
    let work = Arc::new(parking_lot::Mutex::new(work));
    let batch_work = Arc::new(parking_lot::Mutex::new(driven_conns));
    let kept: Arc<parking_lot::Mutex<Vec<TcpStream>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..drivers)
        .map(|_| {
            let work = Arc::clone(&work);
            let batch_work = Arc::clone(&batch_work);
            let kept = Arc::clone(&kept);
            thread::spawn(move || loop {
                let job = work.lock().pop();
                if let Some(job) = job {
                    job();
                    continue;
                }
                let job = batch_work.lock().pop();
                match job {
                    Some(job) => {
                        let stream = job();
                        kept.lock().push(stream);
                    }
                    None => break,
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("driver thread");
    }
    // Note: `drive_pipelined` moved its streams into the closures, which
    // dropped them on completion — those connections are now closing.
    // Batch and idle connections are still open.

    // Every request got exactly one reply (the drivers asserted per-conn
    // uniqueness; the engine-side counter confirms nothing was double-
    // submitted or lost).
    let stats = engine.stats();
    assert!(
        stats.requests >= active_requests as u64,
        "engine saw {} requests, expected at least {active_requests}",
        stats.requests
    );

    // Phase 3: with hundreds of connections held open, the process thread
    // count must be `reactors + workers + supervisor + accept` over the
    // pre-server baseline — independent of the connection count.
    let open_target = idle.len() + kept.lock().len();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let open = engine.metrics().connections_open();
        if open >= open_target || Instant::now() > deadline {
            assert!(
                open >= open_target,
                "share_connections_open {open} never reached {open_target}"
            );
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    if let (Some(baseline), Some(now)) = (baseline_threads, process_threads()) {
        let budget = REACTORS + WORKERS + 2; // + accept + supervisor
        assert!(
            now <= baseline + budget,
            "thread count grew with connections: baseline {baseline}, now {now}, budget {budget}"
        );
    }
    let exposition = engine.render_prometheus();
    assert!(
        exposition.contains("share_reactor_connections{reactor=\"0\"}"),
        "per-reactor gauges exported"
    );
    assert!(exposition.contains("share_reactor_wakeups_total"));

    // Phase 4: clean shutdown flushes an in-flight reply. Submit a solve
    // on a fresh connection, wait until the engine has accepted it, stop
    // the server, and the reply must still arrive before EOF.
    let mut tail = connect_with_retry(addr);
    tail.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let seen_before = engine.stats().requests;
    let mut line = solve_line(999_999, 40, 12345);
    line.push('\n');
    tail.write_all(line.as_bytes()).unwrap();
    let accept_deadline = Instant::now() + Duration::from_secs(10);
    while engine.stats().requests <= seen_before {
        assert!(
            Instant::now() < accept_deadline,
            "server never read the tail request"
        );
        thread::sleep(Duration::from_millis(5));
    }
    server.stop();
    let mut reader = BufReader::new(tail);
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .expect("drain flushed the in-flight reply");
    let resp: WireResponse = serde_json::from_str(reply.trim()).expect("valid tail reply");
    assert_eq!(resp.id, 999_999);
    assert!(resp.is_ok(), "tail solve failed: {reply}");
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).expect("EOF after drain"),
        0,
        "connection closed after the drain"
    );

    // The pool is drained: every connection deregistered.
    let zero_deadline = Instant::now() + Duration::from_secs(10);
    while engine.metrics().connections_open() > 0 {
        assert!(
            Instant::now() < zero_deadline,
            "connections_open stuck at {}",
            engine.metrics().connections_open()
        );
        thread::sleep(Duration::from_millis(20));
    }
    drop(idle);
    engine.shutdown();
}
