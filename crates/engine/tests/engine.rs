//! Integration tests for the serving engine: dedup, backpressure, deadline
//! expiry, and the full TCP wire protocol.
//!
//! Tests that need precise queue control use `workers: 0` engines — jobs
//! then sit in the bounded queue forever, making backpressure and dedup
//! outcomes deterministic instead of racing against solver speed.

use crossbeam::channel::bounded;
use share_engine::{
    serve_metrics, serve_tcp, Client, Engine, EngineConfig, EngineError, RequestBody, ResponseBody,
    ShardedCache, SolveMode, SolveSpec,
};
use std::sync::Arc;

fn config(workers: usize, queue: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: queue,
        ..EngineConfig::default()
    }
}

#[test]
fn backpressure_rejects_when_queue_is_full() {
    // No workers: nothing ever leaves the queue.
    let engine = Engine::start(config(0, 2));
    let (tx, rx) = bounded(8);
    engine.submit(1, &SolveSpec::seeded(5, 1, SolveMode::Direct), &tx);
    engine.submit(2, &SolveSpec::seeded(5, 2, SolveMode::Direct), &tx);
    // Queue (capacity 2) is now full; a third *distinct* spec must be
    // rejected with a structured overload error.
    engine.submit(3, &SolveSpec::seeded(5, 3, SolveMode::Direct), &tx);
    let reply = rx.recv().expect("rejection reply");
    assert_eq!(reply.id, 3);
    assert!(
        matches!(reply.result, Err(EngineError::Overloaded { .. })),
        "{:?}",
        reply.result
    );
    let stats = engine.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.requests, 3);
}

#[test]
fn duplicate_requests_coalesce_while_in_flight() {
    let engine = Engine::start(config(0, 4));
    let (tx, rx) = bounded(8);
    let spec = SolveSpec::seeded(7, 9, SolveMode::Direct);
    engine.submit(1, &spec, &tx);
    engine.submit(2, &spec, &tx);
    engine.submit(3, &spec, &tx);
    let stats = engine.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.deduped, 2, "identical in-flight specs must coalesce");
    // Only one job was queued, so a queue of capacity 4 still has room.
    assert_eq!(stats.rejected, 0);
    drop(rx);
}

#[test]
fn shutdown_fails_pending_waiters() {
    let engine = Engine::start(config(0, 4));
    let (tx, rx) = bounded(8);
    engine.submit(1, &SolveSpec::seeded(5, 1, SolveMode::Direct), &tx);
    engine.shutdown();
    let reply = rx.recv().expect("shutdown reply");
    assert_eq!(reply.result, Err(EngineError::ShuttingDown));
}

#[test]
fn expired_deadline_yields_structured_error() {
    let engine = Engine::start(config(1, 16));
    // A zero-millisecond deadline is always in the past by the time a
    // worker dequeues the job.
    let mut spec = SolveSpec::seeded(6, 4, SolveMode::Direct);
    spec.deadline_ms = Some(0);
    let result = engine.request(&spec);
    assert_eq!(result, Err(EngineError::DeadlineExpired));
    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.solves, 0, "expired job must not be solved");
}

#[test]
fn deadline_generous_enough_succeeds() {
    let engine = Engine::start(config(1, 16));
    let mut spec = SolveSpec::seeded(6, 4, SolveMode::Direct);
    spec.deadline_ms = Some(60_000);
    assert!(engine.request(&spec).is_ok());
}

#[test]
fn concurrent_load_answers_every_request() {
    let engine = Arc::new(Engine::start(config(4, 256)));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..25u64 {
                    // 10 distinct markets, revisited repeatedly across all
                    // threads: a mix of solves, cache hits and dedups.
                    let spec = SolveSpec::seeded(10 + (i % 10) as usize, 7, SolveMode::Direct);
                    let summary = engine.request(&spec).unwrap();
                    assert_eq!(summary.m, 10 + (i % 10) as usize, "thread {t}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.requests, 100);
    // 10 distinct keys: everything beyond the first solve of each must be
    // served by cache or dedup.
    assert!(stats.solves >= 10);
    assert_eq!(
        stats.solves + stats.cache_hits + stats.deduped,
        100,
        "every request is exactly one of solved/cached/deduped: {stats:?}"
    );
}

#[test]
fn tcp_roundtrip_solve_stats_batch_and_shutdown() {
    let engine = Arc::new(Engine::start(config(2, 64)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // Solve twice: second comes from the cache.
    let spec = SolveSpec::seeded(12, 3, SolveMode::Direct);
    let first = client.solve(spec.clone()).unwrap();
    assert!(first.is_ok());
    let ResponseBody::Solve { result } = client.solve(spec).unwrap().body else {
        panic!("expected solve response");
    };
    assert!(result.cached);

    // Ping.
    let pong = client.call(RequestBody::Ping).unwrap();
    assert_eq!(pong.body, ResponseBody::Pong);

    // Malformed line → structured invalid_request error.
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    writeln!(raw, "this is not json").unwrap();
    raw.flush().unwrap();
    let mut line = String::new();
    std::io::BufRead::read_line(
        &mut std::io::BufReader::new(raw.try_clone().unwrap()),
        &mut line,
    )
    .unwrap();
    assert!(line.contains("invalid_request"), "{line}");

    // Batch of three (one duplicate pair).
    let batch = client
        .call(RequestBody::Batch {
            requests: vec![
                SolveSpec::seeded(8, 1, SolveMode::Direct),
                SolveSpec::seeded(8, 1, SolveMode::Direct),
                SolveSpec::seeded(9, 2, SolveMode::MeanField),
            ],
        })
        .unwrap();
    let ResponseBody::Batch { results } = batch.body else {
        panic!("expected batch response");
    };
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(|r| r.is_ok()));

    // Stats reflect the traffic.
    let stats = client.stats().unwrap();
    assert!(stats.requests >= 5);
    assert!(stats.cache_hits >= 1);

    // Graceful shutdown stops the accept loop.
    let ack = client.shutdown_server().unwrap();
    assert_eq!(ack.body, ResponseBody::Shutdown);
    server.wait();
    let final_stats = engine.shutdown();
    assert_eq!(final_stats.invalid, 1);
}

#[test]
fn stats_carry_histogram_quantiles() {
    let engine = Engine::start(config(2, 64));
    for seed in 0..20 {
        engine
            .request(&SolveSpec::seeded(10, seed, SolveMode::Direct))
            .unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.requests, 20);
    assert!(stats.latency_p50_us > 0.0, "{stats:?}");
    assert!(stats.latency_p50_us <= stats.latency_p90_us);
    assert!(stats.latency_p90_us <= stats.latency_p99_us);
    assert!(stats.latency_p99_us <= stats.latency_p999_us);
    assert!(stats.latency_min_us <= stats.latency_p50_us);
    assert!(stats.latency_p999_us <= stats.latency_max_us);
}

#[test]
fn metrics_over_wire_is_valid_prometheus() {
    let engine = Arc::new(Engine::start(config(2, 64)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .solve(SolveSpec::seeded(15, 1, SolveMode::MeanField))
        .unwrap();
    client
        .solve(SolveSpec::seeded(15, 1, SolveMode::MeanField))
        .unwrap();
    let text = client.metrics_text().unwrap();
    let parsed = share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
    assert!(parsed.histograms >= 1, "{parsed:?}");
    assert!(text.contains("share_requests_total 2"), "{text}");
    assert!(text.contains("share_cache_hits_total 1"));
    assert!(text.contains("share_solve_latency_seconds_bucket{mode=\"mean_field\""));
    assert!(text.contains("share_solver_stage_seconds_count{stage=\"stage2\"} 1"));
    assert!(text.contains("share_cache_entries 1"));
    server.stop();
}

#[test]
fn metrics_http_endpoint_serves_exposition() {
    use std::io::{Read, Write};

    let engine = Arc::new(Engine::start(config(2, 64)));
    engine
        .request(&SolveSpec::seeded(9, 3, SolveMode::Direct))
        .unwrap();
    let server = serve_metrics(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP head/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"));
    share_obs::prometheus::validate_exposition(body).expect("valid exposition");
    assert!(body.contains("share_requests_total 1"), "{body}");
    server.stop();
}

#[test]
fn sharded_cache_survives_concurrent_stress() {
    // 8 threads hammer disjoint key ranges, then every thread reads back
    // both its own keys and a neighbor's: no insert may be lost and no hit
    // may return another key's value. Capacity exceeds the total insert
    // count so eviction cannot explain a miss.
    let cache = Arc::new(ShardedCache::<u64, u64>::new(8192, 8));
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = t * 1000 + i;
                    cache.insert(key, key * 3);
                }
                // Re-read own range while other threads still write.
                for i in 0..500u64 {
                    let key = t * 1000 + i;
                    assert_eq!(cache.get(&key), Some(key * 3), "lost insert {key}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(cache.len(), 4000, "inserts lost: {:?}", cache.shard_lens());
    assert_eq!(cache.shard_lens().iter().sum::<usize>(), cache.len());
    for key in 0..8000u64 {
        let expect = (key % 1000 < 500).then_some(key * 3);
        assert_eq!(cache.get(&key), expect, "key {key}");
    }
}

#[test]
fn solve_batch_preserves_submission_order() {
    // Distinct market sizes across the batch: each reply slot must carry
    // the market submitted at that position, whatever order the pool
    // finished them in.
    for workers in [1usize, 4] {
        let engine = Engine::start(config(workers, 256));
        let specs: Vec<SolveSpec> = (0..32)
            .map(|i| SolveSpec::seeded(5 + i, i as u64, SolveMode::Direct))
            .collect();
        let results = engine.solve_batch(&specs);
        assert_eq!(results.len(), 32);
        for (i, r) in results.iter().enumerate() {
            let summary = r.as_ref().expect("batch item failed");
            assert_eq!(summary.m, 5 + i, "workers {workers} slot {i}");
        }
        engine.shutdown();
    }
}

#[test]
fn solve_batch_on_empty_input_returns_empty() {
    let engine = Engine::start(config(1, 16));
    assert!(engine.solve_batch(&[]).is_empty());
    engine.shutdown();
}

#[test]
fn batch_mixing_expired_and_live_deadlines_answers_each_correctly() {
    // Alternate already-expired (0 ms) and generous deadlines over distinct
    // markets: expired slots must fail with the structured deadline error,
    // live slots must solve, and neither may leak into the other's slot.
    let engine = Engine::start(config(2, 256));
    let specs: Vec<SolveSpec> = (0..16)
        .map(|i| {
            let mut spec = SolveSpec::seeded(5 + i, 100 + i as u64, SolveMode::Direct);
            spec.deadline_ms = Some(if i % 2 == 0 { 0 } else { 60_000 });
            spec
        })
        .collect();
    let results = engine.solve_batch(&specs);
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(
                r.as_ref().unwrap_err(),
                &EngineError::DeadlineExpired,
                "slot {i} should have expired"
            );
        } else {
            assert_eq!(r.as_ref().expect("live slot failed").m, 5 + i, "slot {i}");
        }
    }
    let stats = engine.shutdown();
    assert_eq!(stats.deadline_expired, 8);
    assert_eq!(stats.solves, 8, "expired jobs must not be solved");
}

#[test]
fn cache_shards_splits_entries_and_keeps_hits_exact() {
    // Same traffic against 1-shard and 8-shard engines: identical results
    // and identical hit accounting — sharding must be invisible except for
    // lock spread.
    let mut summaries = Vec::new();
    for shards in [1usize, 8] {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_capacity: 64,
            cache_shards: shards,
            ..EngineConfig::default()
        });
        let mut batch = Vec::new();
        for seed in 0..12u64 {
            let spec = SolveSpec::seeded(10, seed, SolveMode::Direct);
            engine.request(&spec).unwrap();
            batch.push(spec);
        }
        // Revisit every market: all 12 must now be cache hits.
        let revisit: Vec<f64> = engine
            .solve_batch(&batch)
            .into_iter()
            .map(|r| {
                let s = r.unwrap();
                assert!(s.cached);
                s.p_m
            })
            .collect();
        let stats = engine.shutdown();
        assert_eq!(stats.cache_hits, 12, "shards {shards}: {stats:?}");
        summaries.push(revisit);
    }
    assert_eq!(summaries[0], summaries[1], "sharding changed results");
}

#[test]
fn deadline_over_wire_expires() {
    let engine = Arc::new(Engine::start(config(1, 64)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut spec = SolveSpec::seeded(5, 2, SolveMode::Direct);
    spec.deadline_ms = Some(0);
    let resp = client.solve(spec).unwrap();
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, "deadline_expired"),
        other => panic!("expected deadline error, got {other:?}"),
    }
    server.stop();
}

/// Regression: the metrics handler runs inline on its accept thread, so a
/// scraper that connects and then goes silent (never sends a request head,
/// never reads the body) must release the thread via the read/write
/// timeouts instead of pinning the listener — the next scrape must still
/// be answered promptly.
#[test]
fn metrics_endpoint_survives_silent_scraper() {
    use std::io::{Read, Write};

    let engine = Arc::new(Engine::start(config(1, 16)));
    engine
        .request(&SolveSpec::seeded(8, 2, SolveMode::Direct))
        .unwrap();
    let server = serve_metrics(Arc::clone(&engine), "127.0.0.1:0").expect("bind");

    // Silent scraper: holds the connection open, sends and reads nothing.
    let silent = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    let begun = std::time::Instant::now();
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    // One 250ms read timeout (plus scheduling slack) bounds the wait; 5s
    // of headroom keeps slow CI from flaking while still catching a
    // handler that blocks until the silent peer disconnects.
    assert!(
        begun.elapsed() < std::time::Duration::from_secs(5),
        "silent scraper delayed the next scrape by {:?}",
        begun.elapsed()
    );
    let (_, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP head/body split");
    share_obs::prometheus::validate_exposition(body).expect("valid exposition");
    assert!(body.contains("share_requests_total 1"), "{body}");
    drop(silent);
    server.stop();
}
