//! Chaos suite: the fault-injection harness driving the fault-tolerance
//! layer end to end, under a **fixed seed** so every run exercises the same
//! injection schedule.
//!
//! The core guarantees under test:
//!
//! - **exactly one reply per request** over the wire while workers panic
//!   and are respawned — zero hangs, zero silent drops, zero server exits;
//! - a retrying [`Client`] **converges to 100% success** against a server
//!   injecting worker panics *and* connection drops;
//! - degraded replies carry the Theorem 5.1 fidelity bound and are never
//!   cached;
//! - the load-shedding gate rejects with a usable `retry_after_ms` hint;
//! - a worker panic mid-solve releases the in-flight dedup slot;
//! - a dead or silent server surfaces as an I/O error, never a hang;
//! - garbage NDJSON gets one structured `invalid_request` reply per line
//!   and the connection stays usable.

use share_engine::fault::FaultState;
use share_engine::{
    serve_tcp, Client, ClientConfig, DegradeReason, Engine, EngineConfig, EngineError, FaultPlan,
    FaultSite, RequestBody, ResilienceConfig, ResponseBody, RetryPolicy, SolveMode, SolveSpec,
};
use share_market::meanfield::theorem51_bounds;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn chaos_config(workers: usize, plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 1024,
        faults: Some(plan),
        ..EngineConfig::default()
    }
}

/// 25% injected worker panics over ≥200 pipelined wire requests across
/// concurrent connections: every id gets **exactly one** reply (success or
/// a typed `worker_panic` error), the supervisor keeps the pool alive, and
/// the server never goes down.
#[test]
fn every_wire_request_gets_exactly_one_reply_under_panics() {
    let plan = FaultPlan::parse("seed=42,panic=0.25").unwrap();
    let engine = Arc::new(Engine::start(chaos_config(4, plan)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 60;
    let clients: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                // Pipeline every request up front; distinct (m, seed) pairs
                // so each one is real solver work, not a cache hit.
                for i in 0..PER_THREAD {
                    let id = t * PER_THREAD + i;
                    writeln!(
                        writer,
                        r#"{{"kind":"solve","id":{id},"spec":{{"m":{m},"seed":{seed}}}}}"#,
                        m = 5 + (i % 6),
                        seed = 1000 + id,
                    )
                    .unwrap();
                }
                writer.flush().unwrap();
                let mut seen = HashSet::new();
                let mut line = String::new();
                while seen.len() < PER_THREAD as usize {
                    line.clear();
                    let n = reader.read_line(&mut line).expect("reply within timeout");
                    assert_ne!(
                        n,
                        0,
                        "server closed mid-stream after {} replies",
                        seen.len()
                    );
                    let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
                    let id = v["id"].as_u64().expect("reply id");
                    assert!(seen.insert(id), "id {id} answered twice");
                    let kind = v["kind"].as_str().unwrap();
                    if kind == "error" {
                        assert_eq!(v["code"], "worker_panic", "unexpected error: {line}");
                    } else {
                        assert_eq!(kind, "solve", "{line}");
                    }
                }
                seen
            })
        })
        .collect();
    let mut all: HashSet<u64> = HashSet::new();
    for c in clients {
        let seen = c.join().expect("client thread");
        assert!(all.is_disjoint(&seen));
        all.extend(seen);
    }
    assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);

    // The seeded schedule injected panics and the supervisor recovered the
    // pool; the exposition carries the whole story and stays valid.
    let stats = engine.stats();
    assert!(stats.worker_panics > 0, "{stats:?}");
    assert!(stats.worker_restarts > 0, "{stats:?}");
    let text = engine.render_prometheus();
    let parsed = share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
    assert!(parsed.families >= 13);
    assert!(text.contains("share_worker_restarts_total"), "{text}");
    assert!(
        !text.contains("share_fault_injections_total{kind=\"worker_panic\"} 0"),
        "panic injections must be counted"
    );
    server.stop();
    engine.shutdown();
}

/// Worker panics *and* connection drops at 25% each: retrying clients
/// reconnect and re-send until every one of ≥200 requests succeeds.
#[test]
fn retrying_clients_converge_to_full_success_under_panics_and_drops() {
    let plan = FaultPlan::parse("seed=7,panic=0.25,drop=0.25").unwrap();
    let engine = Arc::new(Engine::start(chaos_config(2, plan)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 60;
    let clients: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let config = ClientConfig {
                    read_timeout: Some(Duration::from_secs(10)),
                    write_timeout: Some(Duration::from_secs(10)),
                    retry: Some(RetryPolicy {
                        // Failure odds per attempt are ~44% (panic ∪ drop);
                        // 21 attempts push the per-request failure odds
                        // below 1e-7 — "100% success" is the expectation,
                        // not a coin flip.
                        max_retries: 20,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(50),
                        jitter: 0.2,
                        seed: t,
                    }),
                };
                let mut client = Client::connect_with(addr, config).expect("connect");
                for i in 0..PER_THREAD {
                    let spec = SolveSpec::seeded(
                        5 + (i % 4) as usize,
                        9000 + t * PER_THREAD + i,
                        SolveMode::Direct,
                    );
                    let resp = client.solve(spec).expect("call failed past retry budget");
                    assert!(resp.is_ok(), "request did not converge: {:?}", resp.body);
                }
                // Client-side resilience metrics render as a valid
                // exposition, retry histogram included.
                let text = client.render_prometheus();
                share_obs::prometheus::validate_exposition(&text).expect("valid exposition");
                assert!(text.contains("share_client_retry_backoff_seconds_bucket"));
                client.client_stats()
            })
        })
        .collect();
    let mut retries = 0;
    let mut reconnects = 0;
    for c in clients {
        let stats = c.join().expect("client thread");
        assert_eq!(stats.requests, PER_THREAD);
        assert_eq!(stats.giveups, 0, "{stats:?}");
        retries += stats.retries;
        reconnects += stats.reconnects;
    }
    // A quarter of requests panic and a quarter of reads hit a dropped
    // connection; both recovery paths must actually have fired.
    assert!(retries > 0, "no retries under a 25%/25% fault plan");
    assert!(reconnects > 0, "drops must force reconnects");
    server.stop();
    engine.shutdown();
}

/// Forced solver divergence sends direct solves down the degradation
/// ladder: the reply is mean-field, tagged with the Theorem 5.1 bound for
/// the market's seller count, counted, and **never cached**.
#[test]
fn divergence_degrades_to_mean_field_with_theorem51_bound() {
    let plan = FaultPlan::parse("seed=3,diverge=1.0").unwrap();
    let engine = Engine::start(chaos_config(1, plan));
    let spec = SolveSpec::seeded(40, 11, SolveMode::Direct);

    for round in 0..2 {
        let summary = engine.request(&spec).expect("ladder must answer");
        let info = summary.degraded.expect("reply must be tagged degraded");
        assert_eq!(info.reason, DegradeReason::SolverError);
        let (lo, hi) = theorem51_bounds(summary.m);
        assert_eq!(info.bound_lower, lo);
        assert_eq!(info.bound_upper, hi);
        assert!(info.bound_upper > 0.0 && info.bound_lower < 0.0);
        // A degraded stand-in must not be served as a cached full-fidelity
        // answer on the next round.
        assert!(
            !summary.cached,
            "round {round} served a cached degraded reply"
        );
    }
    // Mean-field requests are already the fallback; divergence never
    // applies to them and they stay full fidelity.
    let mf = engine
        .request(&SolveSpec::seeded(40, 11, SolveMode::MeanField))
        .unwrap();
    assert!(mf.degraded.is_none());

    let stats = engine.shutdown();
    assert_eq!(stats.requests_degraded, 2, "{stats:?}");
    assert_eq!(stats.cache_hits, 0, "{stats:?}");
}

/// Proactive rung: with the degrade watermark at zero queue depth, direct
/// solves are answered by mean-field immediately, tagged `shed`.
#[test]
fn degrade_watermark_preempts_expensive_solves() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        resilience: ResilienceConfig {
            degrade_queue_depth: Some(0),
            ..ResilienceConfig::default()
        },
        ..EngineConfig::default()
    });
    let summary = engine
        .request(&SolveSpec::seeded(30, 5, SolveMode::Direct))
        .unwrap();
    let info = summary
        .degraded
        .expect("watermark 0 must degrade everything");
    assert_eq!(info.reason, DegradeReason::Shed);
    assert_eq!(
        (info.bound_lower, info.bound_upper),
        theorem51_bounds(summary.m)
    );
    let stats = engine.shutdown();
    assert_eq!(stats.requests_degraded, 1);
}

/// The admission gate sheds new work past the queue-depth watermark with a
/// typed `overloaded` reply carrying a positive `retry_after_ms`, while
/// dedup joins onto in-flight work stay admitted.
#[test]
fn load_shedding_gate_rejects_with_retry_hint_but_admits_dedup_joins() {
    // No workers: queued jobs never drain, so the depth is fully ours.
    let engine = Engine::start(EngineConfig {
        workers: 0,
        queue_capacity: 64,
        resilience: ResilienceConfig {
            shed_queue_depth: Some(1),
            ..ResilienceConfig::default()
        },
        ..EngineConfig::default()
    });
    let (tx, rx) = crossbeam::channel::bounded(8);
    // First spec enqueues (depth 0 → 1).
    engine.submit(1, &SolveSpec::seeded(5, 1, SolveMode::Direct), &tx);
    // A duplicate of in-flight work joins for free, even past the gate.
    engine.submit(2, &SolveSpec::seeded(5, 1, SolveMode::Direct), &tx);
    // New work now hits the watermark and is shed immediately.
    engine.submit(3, &SolveSpec::seeded(5, 2, SolveMode::Direct), &tx);
    let reply = rx.recv_timeout(Duration::from_secs(5)).expect("shed reply");
    assert_eq!(reply.id, 3);
    match reply.result {
        Err(EngineError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms > 0, "hint must be usable");
        }
        other => panic!("expected shed, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.requests_shed, 1, "{stats:?}");
    assert_eq!(stats.deduped, 1, "{stats:?}");
    engine.shutdown();
}

/// Regression (dedup-slot leak): a worker panic mid-solve answers **every**
/// waiter coalesced onto the job and releases the in-flight entry, so later
/// identical submissions are served fresh instead of hanging.
#[test]
fn worker_panic_releases_the_dedup_slot_and_answers_all_waiters() {
    let plan = FaultPlan::parse("seed=1,panic=1.0").unwrap();
    let engine = Engine::start(chaos_config(1, plan));
    let spec = SolveSpec::seeded(6, 77, SolveMode::Direct);
    let (tx, rx) = crossbeam::channel::bounded(8);
    engine.submit(1, &spec, &tx);
    engine.submit(2, &spec, &tx);
    for _ in 0..2 {
        let reply = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("panicked solve must still answer");
        assert!(
            matches!(reply.result, Err(EngineError::WorkerPanic(_))),
            "{:?}",
            reply.result
        );
    }
    // The slot is free and the respawned worker serves the key again: a
    // third identical submission gets its own (panicked) answer rather
    // than attaching to a ghost entry forever.
    engine.submit(3, &spec, &tx);
    let reply = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("dedup slot leaked: third submission hung");
    assert_eq!(reply.id, 3);
    assert!(matches!(reply.result, Err(EngineError::WorkerPanic(_))));
    let stats = engine.shutdown();
    assert!(stats.worker_panics >= 2, "{stats:?}");
    assert!(stats.worker_restarts >= 1, "{stats:?}");
}

/// Exhausting the restart budget stops respawns without killing the
/// engine: submissions still get typed answers from the surviving path.
#[test]
fn restart_budget_exhaustion_degrades_but_never_hangs() {
    let plan = FaultPlan::parse("seed=2,panic=1.0").unwrap();
    let engine = Engine::start(EngineConfig {
        workers: 1,
        resilience: ResilienceConfig {
            restart_budget: 2,
            ..ResilienceConfig::default()
        },
        faults: Some(plan),
        ..EngineConfig::default()
    });
    // Workers 1 + budget 2 → three lives; drive them all to their deaths.
    for seed in 0..3 {
        let r = engine.request(&SolveSpec::seeded(5, 200 + seed, SolveMode::Direct));
        assert!(matches!(r, Err(EngineError::WorkerPanic(_))), "{r:?}");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.worker_restarts, 2, "{stats:?}");
    assert_eq!(stats.worker_panics, 3, "{stats:?}");
}

/// The engine-level injection schedule is a pure function of the plan:
/// identical seeded runs inject identically, and the counts match a
/// straight replay of the decision stream.
#[test]
fn fault_schedule_is_deterministic_across_engine_runs() {
    let plan = FaultPlan::parse("seed=9,panic=0.3").unwrap();
    let run = || {
        let engine = Engine::start(chaos_config(1, plan));
        // Distinct markets: every request is one solve, one panic draw.
        for seed in 0..64 {
            let _ = engine.request(&SolveSpec::seeded(5, 500 + seed, SolveMode::Direct));
        }
        engine.shutdown().worker_panics
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same plan must inject the same schedule");
    // And both equal the plan's raw decision stream.
    let replay = FaultState::new(plan);
    let expected = (0..64)
        .filter(|_| replay.roll(FaultSite::WorkerPanic))
        .count() as u64;
    assert_eq!(first, expected);
    assert!(expected > 0, "seed 9 at 30% must fire within 64 draws");
}

/// Regression (client hang): a server that dies after reading the request
/// surfaces as `UnexpectedEof` — the old client blocked forever here.
#[test]
fn client_sees_eof_not_hang_when_server_dies_mid_reply() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let killer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Read the request, then drop the connection without replying.
        let _ = reader.read_line(&mut line);
    });
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .call(RequestBody::Ping)
        .expect_err("dead server must error, not hang");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    killer.join().unwrap();
}

/// Regression (client hang): a server that accepts and then goes silent —
/// connection open, no bytes — trips the read timeout instead of blocking
/// the caller forever.
#[test]
fn client_read_timeout_fires_on_a_silent_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let holder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        // Hold the connection open, silently, until the client gives up.
        std::thread::sleep(Duration::from_secs(2));
        drop(stream);
    });
    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
        retry: None,
    };
    let mut client = Client::connect_with(addr, config).expect("connect");
    let start = std::time::Instant::now();
    let err = client
        .call(RequestBody::Ping)
        .expect_err("silent server must time out");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ),
        "{err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "timeout took {:?}",
        start.elapsed()
    );
    holder.join().unwrap();
}

/// Fuzz-style robustness: seeded garbage NDJSON lines each get exactly one
/// structured `invalid_request` reply, the connection survives all of
/// them, and a well-formed request afterwards is still answered.
#[test]
fn garbage_ndjson_lines_get_structured_errors_and_never_kill_the_connection() {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    }));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Adversarial fixtures plus seeded pseudo-random printable garbage
    // (deterministic: splitmix-style LCG, no time or RNG state involved).
    let mut fuzz: Vec<String> = vec![
        "{not json".to_string(),
        "}{".to_string(),
        "null".to_string(),
        "[1,2,3]".to_string(),
        "123456789".to_string(),
        r#""just a string""#.to_string(),
        r#"{"kind":"frobnicate","id":1}"#.to_string(),
        r#"{"kind":"solve"}"#.to_string(),
        r#"{"kind":"solve","id":2,"spec":{"m":0,"seed":1}}"#.to_string(),
        r#"{"kind":"solve","id":3,"spec":{"m":999999999999,"seed":1}}"#.to_string(),
        r#"{"id":4}"#.to_string(),
        "\u{7f}\u{1}\u{2}binary-ish".to_string(),
    ];
    let mut state = 0x9E37_79B9_u64;
    for _ in 0..48 {
        let mut line = String::new();
        for _ in 0..24 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Printable ASCII, minus nothing: '{' and '"' included on
            // purpose so some lines look almost like JSON.
            let c = (32 + (state >> 33) % 95) as u8 as char;
            line.push(c);
        }
        fuzz.push(line);
    }
    let garbage_count = fuzz.len();
    for line in &fuzz {
        writeln!(writer, "{line}").unwrap();
    }
    writer.flush().unwrap();

    let mut line = String::new();
    for i in 0..garbage_count {
        line.clear();
        let n = reader.read_line(&mut line).expect("error reply");
        assert_ne!(n, 0, "connection died after {i} garbage lines");
        assert!(
            line.contains(r#""code":"invalid_request""#),
            "garbage line {i} got: {line}"
        );
    }

    // The connection is still a working protocol stream.
    writeln!(
        writer,
        r#"{{"kind":"solve","id":900,"spec":{{"m":8,"seed":4}}}}"#
    )
    .unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(v["id"], 900);
    assert_eq!(v["kind"], "solve", "{line}");

    let stats = engine.stats();
    assert!(stats.invalid >= garbage_count as u64 - 2, "{stats:?}");
    server.stop();
    engine.shutdown();
}

/// A batch submitted over the wire under panic injection still returns one
/// result per entry, in order — failed slots are typed, not missing.
#[test]
fn wire_batches_stay_positionally_complete_under_panics() {
    let plan = FaultPlan::parse("seed=5,panic=0.5").unwrap();
    let engine = Arc::new(Engine::start(chaos_config(2, plan)));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let requests: Vec<SolveSpec> = (0..16)
        .map(|i| SolveSpec::seeded(5 + i % 3, 3000 + i as u64, SolveMode::Direct))
        .collect();
    let resp = client.call(RequestBody::Batch { requests }).unwrap();
    let ResponseBody::Batch { results } = resp.body else {
        panic!("expected batch response, got {:?}", resp.body);
    };
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.id, i as u64, "slot {i} out of order");
        match &r.body {
            ResponseBody::Solve { result } => assert_eq!(result.m, 5 + i % 3),
            ResponseBody::Error { code, .. } => assert_eq!(code, "worker_panic", "slot {i}"),
            other => panic!("slot {i}: {other:?}"),
        }
    }
    server.stop();
    engine.shutdown();
}

/// Slowloris: a client dribbling one NDJSON request out byte-by-byte (with
/// pauses) must not pin a reactor — concurrent well-behaved clients on the
/// same fixed pool keep getting answered throughout, and the dribbled
/// request itself completes once its newline finally lands.
#[cfg(unix)]
#[test]
fn slowloris_byte_by_byte_writer_does_not_starve_others() {
    use share_engine::serve_tcp_with;

    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 1024,
        ..EngineConfig::default()
    }));
    // One reactor on purpose: if a dribbling connection could pin the
    // event loop, every other connection on this reactor would stall.
    let server = serve_tcp_with(Arc::clone(&engine), "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let line = r#"{"kind":"solve","id":7777,"spec":{"m":9,"seed":4242}}"#;
        for b in line.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["id"], 7777);
        assert_eq!(v["kind"], "solve", "{reply}");
    });

    // While the slow writer dribbles (~100ms of pauses), fast clients on
    // the same reactor must be served promptly — if the dribble pinned
    // the loop, each of these would stall behind it.
    for i in 0..20u64 {
        let mut client = Client::connect(addr).expect("connect");
        let resp = client
            .solve(SolveSpec::seeded(
                5 + (i % 3) as usize,
                i % 4,
                SolveMode::Direct,
            ))
            .expect("fast client served while slowloris dribbles");
        assert!(resp.is_ok(), "{resp:?}");
    }
    slow.join().expect("slow client");
    server.stop();
    engine.shutdown();
}

/// Slowloris stall: a connection that sends half a request line and then
/// goes silent forever must not hold the (single) reactor hostage or leak
/// its connection slot past shutdown. Other clients stay served; the
/// stalled connection is force-closed by the drain deadline at stop time
/// at the latest.
#[cfg(unix)]
#[test]
fn slowloris_mid_line_stall_does_not_pin_the_reactor() {
    use share_engine::serve_tcp_with;

    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 1024,
        ..EngineConfig::default()
    }));
    let server = serve_tcp_with(Arc::clone(&engine), "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();

    // Park three connections mid-line: bytes framed, no newline, then
    // silence. The reactor must treat them as idle, not busy.
    let stalled: Vec<TcpStream> = (0..3)
        .map(|i| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let partial = format!(r#"{{"kind":"solve","id":{i},"spec":{{"m":9,"se"#);
            stream.write_all(partial.as_bytes()).unwrap();
            stream.flush().unwrap();
            stream
        })
        .collect();

    // The single reactor still serves full request/reply cycles.
    let mut client = Client::connect(addr).expect("connect");
    for seed in 0..10u64 {
        let resp = client
            .solve(SolveSpec::seeded(6, seed, SolveMode::Direct))
            .expect("live client served despite stalled peers");
        assert!(resp.is_ok(), "{resp:?}");
    }
    drop(client);

    // Shutdown converges: the stalled connections hold no in-flight work,
    // so the drain closes them immediately (well before the force-close
    // deadline) and `stop` returns.
    let begun = std::time::Instant::now();
    server.stop();
    assert!(
        begun.elapsed() < Duration::from_secs(10),
        "drain hung on stalled connections: {:?}",
        begun.elapsed()
    );
    drop(stalled);
    engine.shutdown();
}
