//! Property tests for cache-key quantization soundness.
//!
//! The quantizer's contract (see `share_engine::quantize`): whenever two
//! market specs map to the same cache key under `param_tol`, serving one
//! the other's cached equilibrium is sound — their true SNE prices differ
//! by less than `price_tol`.

use proptest::prelude::*;
use share_engine::quantize::quantize;
use share_engine::{Engine, EngineConfig, QuantizerConfig, SolveMode, SolveSpec};
use share_market::params::{BrokerParams, BuyerParams, LossModel, MarketParams, SellerParams};
use share_market::solver::solve;

fn market_from(lambdas: &[f64], weights: &[f64], theta1: f64, rho1: f64) -> MarketParams {
    MarketParams {
        buyer: BuyerParams {
            theta1,
            theta2: 1.0 - theta1,
            rho1,
            ..BuyerParams::paper_defaults()
        },
        broker: BrokerParams::paper_defaults(),
        sellers: lambdas
            .iter()
            .map(|&lambda| SellerParams { lambda })
            .collect(),
        weights: weights.to_vec(),
        loss_model: LossModel::Quadratic,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same key ⟹ SNE prices within the configured tolerance.
    #[test]
    fn shared_key_implies_close_prices(
        lambdas in proptest::collection::vec(0.05..1.0f64, 1..8),
        extra_weight in proptest::collection::vec(0.1..1.0f64, 8),
        theta1 in 0.2..0.8f64,
        rho1 in 0.2..2.0f64,
        // Per-field perturbations well inside one quantization bucket.
        eps in proptest::collection::vec(-4e-7..4e-7f64, 18),
    ) {
        let cfg = QuantizerConfig::default();
        let m = lambdas.len();
        let weights: Vec<f64> = extra_weight[..m].to_vec();
        let a = market_from(&lambdas, &weights, theta1, rho1);

        // Perturb every continuous field by less than param_tol.
        let lambdas_b: Vec<f64> = lambdas
            .iter()
            .enumerate()
            .map(|(i, &l)| l + eps[i])
            .collect();
        let weights_b: Vec<f64> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| w + eps[8 + i])
            .collect();
        let b = market_from(&lambdas_b, &weights_b, theta1 + eps[16], rho1 + eps[17]);
        prop_assert!(a.validate().is_ok() && b.validate().is_ok());

        let key_a = quantize(&a, SolveMode::Direct, cfg.param_tol);
        let key_b = quantize(&b, SolveMode::Direct, cfg.param_tol);
        // Perturbations can straddle a bucket boundary, so equal keys are
        // not guaranteed — but when they ARE equal the contract must hold.
        prop_assume!(key_a == key_b);

        let sa = solve(&a).unwrap();
        let sb = solve(&b).unwrap();
        prop_assert!(
            (sa.p_m - sb.p_m).abs() < cfg.price_tol,
            "p_m {} vs {} under shared key", sa.p_m, sb.p_m
        );
        prop_assert!(
            (sa.p_d - sb.p_d).abs() < cfg.price_tol,
            "p_d {} vs {} under shared key", sa.p_d, sb.p_d
        );
    }

    /// Quantization never conflates parameter sets that differ by more than
    /// two buckets in any single field.
    #[test]
    fn distant_params_never_share_a_key(
        lambdas in proptest::collection::vec(0.05..1.0f64, 1..8),
        idx in any::<prop::sample::Index>(),
        bump in 3e-6..1e-2f64,
    ) {
        let cfg = QuantizerConfig::default();
        let m = lambdas.len();
        let weights = vec![1.0 / m as f64; m];
        let a = market_from(&lambdas, &weights, 0.5, 0.5);
        let mut lambdas_b = lambdas.clone();
        let i = idx.index(m);
        lambdas_b[i] += bump; // ≥ 3 buckets away at tol = 1e-6
        let b = market_from(&lambdas_b, &weights, 0.5, 0.5);
        prop_assert_ne!(
            quantize(&a, SolveMode::Direct, cfg.param_tol),
            quantize(&b, SolveMode::Direct, cfg.param_tol)
        );
    }

    /// End-to-end cache-hit soundness: when a perturbed market is served
    /// from another market's cached entry, the served prices are still
    /// within `price_tol` of the perturbed market's true equilibrium. This
    /// drives the whole submit → cache → reply path (and, in debug builds,
    /// the engine's own `debug_assert!` re-solve on every hit).
    #[test]
    fn cache_served_prices_stay_within_price_tol(
        lambdas in proptest::collection::vec(0.05..1.0f64, 1..6),
        theta1 in 0.2..0.8f64,
        eps in proptest::collection::vec(-4e-7..4e-7f64, 7),
    ) {
        let cfg = QuantizerConfig::default();
        let m = lambdas.len();
        let weights = vec![1.0 / m as f64; m];
        let a = market_from(&lambdas, &weights, theta1, 0.5);
        let lambdas_b: Vec<f64> = lambdas
            .iter()
            .enumerate()
            .map(|(i, &l)| l + eps[i])
            .collect();
        let b = market_from(&lambdas_b, &weights, theta1 + eps[6], 0.5);
        prop_assume!(
            quantize(&a, SolveMode::Direct, cfg.param_tol)
                == quantize(&b, SolveMode::Direct, cfg.param_tol)
        );

        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 16,
            ..EngineConfig::default()
        });
        let first = engine
            .request(&SolveSpec::explicit(a, SolveMode::Direct))
            .unwrap();
        let second = engine
            .request(&SolveSpec::explicit(b.clone(), SolveMode::Direct))
            .unwrap();
        engine.shutdown();
        prop_assert!(!first.cached && second.cached);

        let fresh = solve(&b).unwrap();
        prop_assert!(
            (second.p_m - fresh.p_m).abs() < cfg.price_tol,
            "cache-served p_m {} vs fresh {}", second.p_m, fresh.p_m
        );
        prop_assert!(
            (second.p_d - fresh.p_d).abs() < cfg.price_tol,
            "cache-served p_d {} vs fresh {}", second.p_d, fresh.p_d
        );
    }

    /// Quantized equality is reflexive over serde round-trips: a spec that
    /// travels the wire still hits the same cache entry.
    #[test]
    fn wire_roundtrip_preserves_key(
        lambdas in proptest::collection::vec(0.05..1.0f64, 1..6),
    ) {
        let cfg = QuantizerConfig::default();
        let m = lambdas.len();
        let weights = vec![1.0 / m as f64; m];
        let a = market_from(&lambdas, &weights, 0.5, 0.5);
        let js = serde_json::to_string(&a).unwrap();
        let back: MarketParams = serde_json::from_str(&js).unwrap();
        prop_assert_eq!(
            quantize(&a, SolveMode::Direct, cfg.param_tol),
            quantize(&back, SolveMode::Direct, cfg.param_tol)
        );
    }
}
