//! Allocation-counting harness for the serving hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; counting
//! is armed per-thread, so worker/reactor threads don't pollute the
//! measurement. Two pins:
//!
//! - the warm cache-hit path (fast parse → inline cache probe → buffered
//!   encode) performs **zero** heap allocations per request once buffers
//!   reach steady state (release builds only: debug builds re-solve every
//!   hit for the price-tolerance contract check);
//! - the caller-side cost of a cold solve stays within a fixed allocation
//!   budget, so per-request allocation regressions fail loudly with the
//!   observed count.

use share_engine::{
    encode_response_into, parse_request_hot, Engine, EngineConfig, HitScratch, RequestBody,
    ResponseBody, SolveMode, SolveSpec, WireResponse,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Armed only around the measured section, only on the test thread.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    /// Allocations (alloc/alloc_zeroed/realloc) observed while armed.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

fn note() {
    // `try_with` because the allocator also runs during thread teardown,
    // after TLS destruction; those calls are silently not counted.
    let _ = COUNTING.try_with(|c| {
        if c.get() {
            let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` with this thread's allocation counter armed; returns the count.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    let r = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCS.with(|a| a.get()), r)
}

/// The reactor's per-request hot path, reproduced exactly: fast parse,
/// inline cache probe with reused scratch, response encoded into a reused
/// write buffer. Returns the encoded length as a use of the output.
fn serve_warm_hit(
    engine: &Engine,
    line: &str,
    scratch: &mut HitScratch,
    out: &mut Vec<u8>,
) -> usize {
    let req = parse_request_hot(line).expect("hot line parses");
    let RequestBody::Solve {
        spec,
        mode,
        deadline_ms,
    } = req.body
    else {
        panic!("not a solve line")
    };
    let solve = SolveSpec {
        spec,
        mode,
        deadline_ms,
    };
    let result = engine
        .try_cache_hit(req.id, &solve, scratch)
        .expect("warm cache hit");
    assert!(result.cached);
    let resp = WireResponse {
        id: req.id,
        trace: None,
        body: ResponseBody::Solve { result },
    };
    out.clear();
    encode_response_into(&resp, out);
    out.len()
}

#[test]
fn warm_cache_hit_is_allocation_free() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    let line = r#"{"kind":"solve","id":9,"spec":{"m":40,"seed":7}}"#;
    let spec = SolveSpec::seeded(40, 7, SolveMode::Direct);
    engine.request(&spec).expect("cold solve populates the cache");

    let mut scratch = HitScratch::new();
    let mut out = Vec::new();
    // Reach steady state: grow the scratch market/key buffers and the
    // write buffer to their final sizes.
    for _ in 0..16 {
        assert!(serve_warm_hit(&engine, line, &mut scratch, &mut out) > 0);
    }

    const ROUNDS: u64 = 64;
    let (allocs, _) = count_allocs(|| {
        for _ in 0..ROUNDS {
            serve_warm_hit(&engine, line, &mut scratch, &mut out);
        }
    });

    // Debug builds re-solve the market on every cache hit to enforce the
    // quantizer's price-tolerance contract, which allocates by design;
    // the zero-allocation pin is a release-build property (CI runs this
    // test with --release).
    #[cfg(not(debug_assertions))]
    assert_eq!(
        allocs, 0,
        "warm cache-hit hot path allocated {allocs} times over {ROUNDS} requests \
         (expected zero after steady state)"
    );
    #[cfg(debug_assertions)]
    let _ = allocs;

    engine.shutdown();
}

#[test]
fn fast_parse_and_encode_are_allocation_free() {
    // The wire-layer pieces alone (no engine): the fast-path parser reads
    // borrowed bytes into an inline WireRequest, and the encoder writes
    // into a reused buffer. Zero allocations in debug and release both.
    let line = r#"{"kind":"solve","id":3,"spec":{"m":25,"seed":11},"mode":"numeric","deadline_ms":500}"#;
    let mut out = Vec::new();
    let warm = parse_request_hot(line).expect("parses");
    let resp = WireResponse {
        id: warm.id,
        trace: None,
        body: ResponseBody::Pong,
    };
    encode_response_into(&resp, &mut out); // size the buffer

    let (allocs, _) = count_allocs(|| {
        for _ in 0..64 {
            let req = parse_request_hot(line).expect("parses");
            assert_eq!(req.id, 3);
            out.clear();
            encode_response_into(&resp, &mut out);
        }
    });
    assert_eq!(
        allocs, 0,
        "fast parse + buffered encode allocated {allocs} times over 64 iterations"
    );
}

#[test]
fn cold_solve_allocations_stay_bounded() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    // Warm the submission machinery (channels, queue, inflight map).
    for seed in 0..4 {
        engine
            .request(&SolveSpec::seeded(20, seed, SolveMode::Direct))
            .unwrap();
    }

    const ROUNDS: u64 = 8;
    let (allocs, results) = count_allocs(|| {
        (0..ROUNDS)
            .map(|i| engine.request(&SolveSpec::seeded(20, 1000 + i, SolveMode::Direct)))
            .collect::<Vec<_>>()
    });
    for r in results {
        r.expect("cold solve succeeds");
    }

    // Counts only the caller-side path (materialize, quantize, channel
    // hand-off, reply) — the solver runs on worker threads, outside this
    // thread's counter. The budget is generous headroom over the observed
    // count; it exists to catch order-of-magnitude per-request regressions.
    let per_request = allocs / ROUNDS;
    assert!(
        per_request <= 64,
        "cold solve submission path allocated {per_request} times per request \
         (total {allocs} over {ROUNDS}), budget 64"
    );
    engine.shutdown();
}
