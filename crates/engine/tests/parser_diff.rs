//! Differential harness for the zero-allocation fast-path request parser.
//!
//! The contract of `parse_request_fast` is: on ANY byte sequence it either
//! returns exactly the `WireRequest` the serde parser would produce, or it
//! returns `None` (bails) — it may never accept a line serde rejects, nor
//! produce a different value, nor accept invalid UTF-8. These properties
//! drive random well-formed requests, truncations, single-byte mutations
//! and raw garbage through both parsers and compare.

use proptest::prelude::*;
use share_engine::{
    parse_request, parse_request_fast, parse_request_hot, MarketSpec, RequestBody, SolveMode,
    SolveSpec, WireRequest,
};

fn mode_strategy() -> impl Strategy<Value = SolveMode> {
    prop_oneof![
        Just(SolveMode::Direct),
        Just(SolveMode::MeanField),
        Just(SolveMode::Numeric),
    ]
}

fn seeded_spec_strategy() -> impl Strategy<Value = MarketSpec> {
    (
        1usize..200,
        any::<u64>(),
        proptest::option::of(1usize..10_000),
        proptest::option::of(0.05f64..1.0),
    )
        .prop_map(|(m, seed, n_pieces, v)| MarketSpec::Seeded {
            m,
            seed,
            n_pieces,
            v,
        })
}

fn request_strategy() -> impl Strategy<Value = WireRequest> {
    let solve = (
        seeded_spec_strategy(),
        mode_strategy(),
        proptest::option::of(0u64..100_000),
    )
        .prop_map(|(spec, mode, deadline_ms)| RequestBody::Solve {
            spec,
            mode,
            deadline_ms,
        });
    let simple = prop_oneof![
        Just(RequestBody::Stats),
        Just(RequestBody::Metrics),
        Just(RequestBody::Ping),
        Just(RequestBody::NodeInfo),
        Just(RequestBody::Snapshot),
        Just(RequestBody::Shutdown),
    ];
    let batch = proptest::collection::vec(
        (seeded_spec_strategy(), mode_strategy()).prop_map(|(spec, mode)| SolveSpec {
            spec,
            mode,
            deadline_ms: None,
        }),
        0..4,
    )
    .prop_map(|requests| RequestBody::Batch { requests });
    let body = prop_oneof![6 => solve, 3 => simple, 1 => batch];
    (
        any::<u64>(),
        proptest::option::of("[0-9a-f]{8}-[0-9a-f]{4}-0[01]"),
        body,
    )
        .prop_map(|(id, trace, body)| WireRequest { id, trace, body })
}

/// The core differential check, valid for arbitrary bytes:
/// - fast accepting ⇒ the bytes are valid UTF-8 AND serde accepts the
///   same value;
/// - the hot entry point (fast + fallback) and plain serde agree on
///   accept/reject and on the parsed value.
fn check_agreement(bytes: &[u8]) -> Result<(), TestCaseError> {
    let fast = parse_request_fast(bytes);
    match std::str::from_utf8(bytes) {
        Ok(text) => {
            match (parse_request_hot(text), parse_request(text)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(&a, &b, "hot vs serde value on {:?}", text),
                (Err(_), Err(_)) => {}
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "accept/reject disagreement on {text:?}: hot={a:?} serde={b:?}"
                    )))
                }
            }
            if let Some(f) = fast {
                let via_serde = parse_request(text);
                prop_assert!(
                    via_serde.is_ok(),
                    "fast accepted a line serde rejects: {text:?}"
                );
                prop_assert_eq!(&f, &via_serde.unwrap(), "fast vs serde value on {:?}", text);
            }
        }
        Err(_) => prop_assert!(fast.is_none(), "fast path accepted invalid UTF-8"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Well-formed requests (serde-serialized): both parsers accept and
    /// agree; when the fast path engages it produces the identical value.
    #[test]
    fn agrees_on_serialized_requests(req in request_strategy()) {
        let line = serde_json::to_string(&req).unwrap();
        let via_serde = parse_request(&line).unwrap();
        prop_assert_eq!(&via_serde, &req);
        prop_assert_eq!(&parse_request_hot(&line).unwrap(), &via_serde);
        check_agreement(line.as_bytes())?;
    }

    /// Truncating a valid request at any byte must not confuse either
    /// parser into accepting, and they must keep agreeing.
    #[test]
    fn agrees_on_truncated_requests(
        req in request_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let line = serde_json::to_string(&req).unwrap();
        let cut = cut.index(line.len() + 1);
        check_agreement(&line.as_bytes()[..cut])?;
    }

    /// Overwriting one byte of a valid request with an arbitrary byte
    /// (possibly making it invalid UTF-8) keeps the parsers in agreement.
    #[test]
    fn agrees_on_mutated_requests(
        req in request_strategy(),
        pos in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = serde_json::to_string(&req).unwrap().into_bytes();
        let pos = pos.index(bytes.len());
        bytes[pos] = byte;
        check_agreement(&bytes)?;
    }

    /// Raw garbage bytes: virtually always a bail/reject on both sides,
    /// and never a disagreement.
    #[test]
    fn agrees_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        check_agreement(&bytes)?;
    }

    /// Garbage constrained to JSON-ish characters, which exercises the
    /// parser structure much harder than uniform bytes.
    #[test]
    fn agrees_on_jsonish_garbage(line in r#"[{}\[\]":,a-z0-9. ]{0,120}"#) {
        check_agreement(line.as_bytes())?;
    }
}
