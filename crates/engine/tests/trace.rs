//! Distributed-tracing integration tests against a live TCP engine: wire
//! propagation of the trace context, per-hop span recording, outcome
//! annotations, and the `trace` wire kind.

use share_engine::{serve_tcp, Client, ClientConfig, Engine, EngineConfig, RequestBody};
use share_engine::{ResponseBody, SolveMode, SolveSpec, WireTrace};
use share_obs::TraceContext;
use std::sync::Arc;

fn start_node(node_id: &str) -> (Arc<Engine>, share_engine::TcpServer) {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        node_id: Some(node_id.to_string()),
        ..EngineConfig::default()
    }));
    let server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("bind node");
    (engine, server)
}

/// A head-sampled context with a fixed trace id: every hop keeps it, so
/// the test is deterministic regardless of the process-global sampler
/// configuration (other tests in this binary share the tracer).
fn fixed_ctx(trace_id: u128) -> TraceContext {
    TraceContext {
        trace_id,
        span_id: 0,
        sampled: true,
    }
}

fn solve_body(m: usize, seed: u64) -> RequestBody {
    let spec = SolveSpec::seeded(m, seed, SolveMode::Direct);
    RequestBody::Solve {
        spec: spec.spec,
        mode: spec.mode,
        deadline_ms: spec.deadline_ms,
    }
}

fn fetch_trace(client: &mut Client, trace_id: u128) -> WireTrace {
    let hex = format!("{trace_id:032x}");
    let traces = client.trace(Some(hex.clone()), None).expect("trace query");
    traces
        .into_iter()
        .find(|t| t.trace_id == hex)
        .expect("queried trace was kept")
}

#[test]
fn traced_solve_records_engine_hop_with_children_and_annotations() {
    let (_engine, server) = start_node("trace-node");
    let mut c = Client::connect_with(server.local_addr().to_string(), ClientConfig::default())
        .expect("connect");
    let ctx = fixed_ctx(0xA11CE_0001);

    let resp = c
        .call_traced(solve_body(12, 777), Some(ctx.to_wire()))
        .expect("traced solve");
    assert!(matches!(resp.body, ResponseBody::Solve { ref result } if result.is_ok()));
    let wire = resp.trace.expect("traced request must echo a trace context");
    let echoed = TraceContext::from_wire(&wire).expect("well-formed trace field");
    assert_eq!(echoed.trace_id, ctx.trace_id, "hop stays in the same trace");
    assert!(echoed.sampled, "sampled flag survives the round trip");

    let trace = fetch_trace(&mut c, ctx.trace_id);
    let hop = trace
        .spans
        .iter()
        .find(|s| s.name == "engine_request")
        .expect("engine hop recorded");
    assert_eq!(hop.node, "trace-node");
    assert_eq!(
        hop.parent_span_id, 0,
        "hop adopted the client's root context"
    );
    assert_eq!(hop.span_id, echoed.span_id, "reply echoes the hop span");
    let queue_wait = trace
        .spans
        .iter()
        .find(|s| s.name == "queue_wait")
        .expect("queue_wait child recorded");
    let solve = trace
        .spans
        .iter()
        .find(|s| s.name == "solve")
        .expect("solve child recorded");
    for child in [queue_wait, solve] {
        assert_eq!(child.parent_span_id, hop.span_id, "child of the hop root");
        assert!(child.start_us >= hop.start_us, "child starts within parent");
        assert!(
            child.duration_ns <= hop.duration_ns,
            "child cannot outlast its parent"
        );
    }
    assert!(
        queue_wait.duration_ns + solve.duration_ns <= hop.duration_ns,
        "sequential children must fit inside the hop: {} + {} > {}",
        queue_wait.duration_ns,
        solve.duration_ns,
        hop.duration_ns
    );
    assert!(
        solve
            .annotations
            .iter()
            .any(|(k, v)| k == "mode" && v == "direct"),
        "solve span names its solver mode: {:?}",
        solve.annotations
    );
    assert!(
        solve.annotations.iter().any(|(k, _)| k == "stage1_ns"),
        "solve span carries stage timings"
    );
}

#[test]
fn cache_hits_annotate_the_hop_root() {
    let (_engine, server) = start_node("cache-node");
    let mut c = Client::connect_with(server.local_addr().to_string(), ClientConfig::default())
        .expect("connect");
    // Warm the cache untraced, then hit it traced.
    let warm = c.call(solve_body(10, 4242)).expect("warm solve");
    assert!(matches!(warm.body, ResponseBody::Solve { ref result } if result.is_ok()));
    let ctx = fixed_ctx(0xA11CE_0002);
    let resp = c
        .call_traced(solve_body(10, 4242), Some(ctx.to_wire()))
        .expect("traced cache hit");
    match resp.body {
        ResponseBody::Solve { result } => {
            assert!(result.expect("solve ok").cached, "second solve hits cache")
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    let trace = fetch_trace(&mut c, ctx.trace_id);
    let hop = trace
        .spans
        .iter()
        .find(|s| s.name == "engine_request")
        .expect("engine hop recorded");
    assert!(
        hop.annotations
            .iter()
            .any(|(k, v)| k == "cache" && v == "hit"),
        "cache hit annotated on the hop: {:?}",
        hop.annotations
    );
}

#[test]
fn untraced_requests_carry_no_trace_field() {
    let (_engine, server) = start_node("plain-node");
    let mut c = Client::connect_with(server.local_addr().to_string(), ClientConfig::default())
        .expect("connect");
    let resp = c.call(solve_body(8, 99)).expect("solve");
    assert!(
        resp.trace.is_none(),
        "engines never mint: an untraced request stays untraced"
    );
    let pong = c.call(RequestBody::Ping).expect("ping");
    assert!(pong.trace.is_none());
}

#[test]
fn trace_query_for_unknown_id_answers_empty() {
    let (_engine, server) = start_node("empty-node");
    let mut c = Client::connect_with(server.local_addr().to_string(), ClientConfig::default())
        .expect("connect");
    let traces = c
        .trace(Some(format!("{:032x}", 0xDEAD_BEEF_u128)), None)
        .expect("trace query");
    assert!(traces.is_empty(), "unknown id matches nothing: {traces:?}");
}
