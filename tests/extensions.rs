//! Integration tests for the extension surface: welfare, calibration,
//! truthfulness, analytics, simulation, alternative estimators, and the
//! privacy/utility interplay across substrates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use share::datagen::ccpp::{feature_domains, generate, target_domain, CcppConfig};
use share::datagen::partition::partition_equal;
use share::market::dynamics::{RoundOptions, TradingMarket, WeightUpdate};
use share::market::fast_shapley::FastShapleyOptions;
use share::market::params::MarketParams;
use share::market::solver::solve;

fn build_market(m: usize, rows_per_seller: usize, n_pieces: usize, seed: u64) -> TradingMarket {
    let corpus = generate(CcppConfig {
        rows: m * rows_per_seller,
        seed,
        ..CcppConfig::default()
    })
    .unwrap();
    let test = generate(CcppConfig {
        rows: 300,
        seed: seed + 1,
        ..CcppConfig::default()
    })
    .unwrap();
    let sellers = partition_equal(&corpus, m).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let mut params = MarketParams::paper_defaults(m, &mut rng);
    params.buyer.n_pieces = n_pieces;
    TradingMarket::new(
        params,
        sellers,
        test,
        feature_domains().to_vec(),
        target_domain(),
    )
    .unwrap()
}

#[test]
fn welfare_identity_holds_at_every_scale() {
    // W(τ*) = Φ* + Ω* + ΣΨ* — transfers cancel.
    use share::market::welfare::welfare;
    for &m in &[3usize, 30, 300] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let params = MarketParams::paper_defaults(m, &mut rng);
        let sol = solve(&params).unwrap();
        let w = welfare(&params, &sol.tau);
        let total = sol.buyer_profit + sol.broker_profit + sol.seller_profits.iter().sum::<f64>();
        assert!((w - total).abs() < 1e-9 * (1.0 + w.abs()), "m = {m}");
    }
}

#[test]
fn calibration_recovers_params_from_live_ledger() {
    // Run rounds without weight updates, then re-fit seller 0's λ from the
    // recorded responses.
    use share::market::calibration::{fit_lambda, seller_observations};
    let mut market = build_market(6, 150, 120, 101);
    let truth = market.params().sellers[0].lambda;
    let n = market.params().buyer.n_pieces;
    let opts = RoundOptions {
        weight_update: WeightUpdate::None,
        ..RoundOptions::default()
    };
    for _ in 0..3 {
        market.run_round(opts).unwrap();
    }
    let obs = seller_observations(market.ledger(), 0, n).unwrap();
    assert_eq!(obs.len(), 3);
    let fitted = fit_lambda(&obs).unwrap();
    assert!(
        (fitted - truth).abs() < 1e-9 * truth.max(1.0),
        "fitted {fitted} vs truth {truth}"
    );
}

#[test]
fn analytics_report_tracks_simulation() {
    use share::market::simulation::{simulate, BuyerPopulation, SimulationConfig};
    let mut market = build_market(8, 400, 200, 111);
    let outcome = simulate(
        &mut market,
        SimulationConfig {
            arrivals: 5,
            population: BuyerPopulation {
                n_pieces: (100, 250),
                ..BuyerPopulation::default()
            },
            round: RoundOptions {
                weight_update: WeightUpdate::FastLinReg(FastShapleyOptions {
                    permutations: 8,
                    seed: 1,
                    ridge: 1e-6,
                }),
                seed: 2,
                ..RoundOptions::default()
            },
            seed: 3,
        },
    )
    .unwrap();
    assert_eq!(outcome.report.rounds, 5);
    assert_eq!(outcome.report.seller_revenue.len(), 8);
    // Buyer payments in the report equal the ledger sum.
    let ledger_sum = market.ledger().total_buyer_payments();
    assert!((outcome.report.total_buyer_payments - ledger_sum).abs() < 1e-12);
}

#[test]
fn alternative_shapley_estimators_agree_on_market_utility() {
    // Exact vs permutation vs stratified on a real model-quality utility
    // over a small seller coalition game.
    use share::ml::dataset::Dataset;
    use share::ml::suffstats::SufficientStats;
    use share::valuation::exact::shapley_exact;
    use share::valuation::monte_carlo::{shapley_monte_carlo, McOptions};
    use share::valuation::stratified::{shapley_stratified, StratifiedOptions};
    use share::valuation::utility::CoalitionUtility;

    struct ModelUtility {
        groups: Vec<Dataset>,
        test: Dataset,
    }
    impl CoalitionUtility for ModelUtility {
        fn n_players(&self) -> usize {
            self.groups.len()
        }
        fn utility(&self, c: &[usize]) -> f64 {
            if c.is_empty() {
                return 0.0;
            }
            let mut stats = SufficientStats::zeros(self.test.n_features());
            for &g in c {
                stats.merge(&SufficientStats::from_dataset(&self.groups[g]));
            }
            stats.explained_variance(&self.test, 1e-6).unwrap_or(0.0)
        }
    }

    let data = generate(CcppConfig {
        rows: 300,
        seed: 121,
        ..CcppConfig::default()
    })
    .unwrap();
    let test = generate(CcppConfig {
        rows: 200,
        seed: 122,
        ..CcppConfig::default()
    })
    .unwrap();
    let u = ModelUtility {
        groups: partition_equal(&data, 6).unwrap(),
        test,
    };
    let exact = shapley_exact(&u).unwrap();
    let mc = shapley_monte_carlo(
        &u,
        McOptions {
            permutations: 800,
            seed: 5,
            ..McOptions::default()
        },
    )
    .unwrap();
    let strat = shapley_stratified(
        &u,
        StratifiedOptions {
            samples_per_stratum: 120,
            seed: 6,
        },
    )
    .unwrap();
    for i in 0..6 {
        assert!((mc[i] - exact[i]).abs() < 0.02, "mc[{i}]");
        assert!((strat[i] - exact[i]).abs() < 0.02, "strat[{i}]");
    }
}

#[test]
fn privacy_utility_tradeoff_is_monotone_in_fidelity() {
    // Perturb a CCPP sample at several fidelities; the trained model's
    // explained variance should improve (weakly) with higher τ.
    use share::ldp::fidelity::epsilon_for_fidelity;
    use share::ldp::laplace::LaplaceMechanism;
    use share::ldp::mechanism::Mechanism;
    use share::ml::dataset::Dataset;
    use share::ml::suffstats::SufficientStats;

    let base = generate(CcppConfig {
        rows: 3000,
        seed: 131,
        ..CcppConfig::default()
    })
    .unwrap();
    let test = generate(CcppConfig {
        rows: 800,
        seed: 132,
        ..CcppConfig::default()
    })
    .unwrap();
    let doms = feature_domains();
    let mut rng = StdRng::seed_from_u64(133);

    let ev_at = |tau: f64, rng: &mut StdRng| -> f64 {
        let mut d: Dataset = base.clone();
        let eps = epsilon_for_fidelity(tau).unwrap();
        if eps.is_finite() {
            for (j, dom) in doms.iter().enumerate() {
                let mech = LaplaceMechanism::new(eps, *dom).unwrap();
                for r in 0..d.len() {
                    let v = d.features().row(r)[j];
                    d.features_mut()[(r, j)] = mech.perturb(v, rng);
                }
            }
        }
        // Normalize via per-column standardization before fitting.
        let scaler = share::ml::scale::Standardizer::fit(d.features()).unwrap();
        let x = scaler.transform(d.features()).unwrap();
        let std = Dataset::new(x, d.targets().to_vec()).unwrap();
        let stats = SufficientStats::from_dataset(&std);
        let tx = scaler.transform(test.features()).unwrap();
        let tstd = Dataset::new(tx, test.targets().to_vec()).unwrap();
        stats.explained_variance(&tstd, 1e-6).unwrap_or(-1.0)
    };

    let low = ev_at(0.3, &mut rng);
    let high = ev_at(0.95, &mut rng);
    let clean = ev_at(1.0, &mut rng);
    assert!(clean > 0.85, "clean model should fit well: {clean}");
    assert!(
        clean >= high && high >= low - 0.05,
        "monotone fidelity-utility: low {low}, high {high}, clean {clean}"
    );
}

#[test]
fn condition_number_explains_ldp_training_difficulty() {
    // The Gram matrix's conditioning degrades by orders once heavy LDP
    // noise hits the features — the diagnostic behind the standardized
    // production path.
    use share::ldp::laplace::LaplaceMechanism;
    use share::ldp::mechanism::Mechanism;
    use share::numerics::decomp::{condition_number_spd, PowerOptions};

    let base = generate(CcppConfig {
        rows: 500,
        seed: 141,
        ..CcppConfig::default()
    })
    .unwrap();
    let doms = feature_domains();
    let mut rng = StdRng::seed_from_u64(142);

    let cond_of = |d: &share::ml::dataset::Dataset| {
        let mut g = d.features().with_intercept_column().gram();
        g.shift_diagonal(1e-9);
        condition_number_spd(&g, PowerOptions::default()).unwrap()
    };

    let clean_cond = cond_of(&base);
    let mut noisy = base.clone();
    for (j, dom) in doms.iter().enumerate() {
        let mech = LaplaceMechanism::new(1e-4, *dom).unwrap(); // brutal noise
        for r in 0..noisy.len() {
            let v = noisy.features().row(r)[j];
            noisy.features_mut()[(r, j)] = mech.perturb(v, &mut rng);
        }
    }
    let noisy_cond = cond_of(&noisy);
    assert!(
        noisy_cond > 10.0 * clean_cond,
        "clean {clean_cond:.3e} vs noisy {noisy_cond:.3e}"
    );
}

#[test]
fn classification_product_survives_moderate_ldp() {
    // The paper leaves the product form open; build a classification
    // product (high/low power output) from CCPP-like data and check that
    // LDP degrades but does not destroy it at a moderate fidelity.
    use share::ldp::fidelity::epsilon_for_fidelity;
    use share::ldp::laplace::LaplaceMechanism;
    use share::ldp::mechanism::Mechanism;
    use share::ml::logreg::{LogRegConfig, LogisticRegression};
    use share::numerics::stats::median;

    let make_labeled = |seed: u64| {
        let d = generate(CcppConfig {
            rows: 1500,
            seed,
            ..CcppConfig::default()
        })
        .unwrap();
        let cut = median(d.targets()).unwrap();
        let labels: Vec<f64> = d.targets().iter().map(|&t| f64::from(t > cut)).collect();
        share::ml::dataset::Dataset::new(d.features().clone(), labels).unwrap()
    };
    let train = make_labeled(201);
    let test = make_labeled(202);

    let accuracy_of = |data: &share::ml::dataset::Dataset| {
        let scaler = share::ml::scale::Standardizer::fit(data.features()).unwrap();
        let x = scaler.transform(data.features()).unwrap();
        let std = share::ml::dataset::Dataset::new(x, data.targets().to_vec()).unwrap();
        let mut model = LogisticRegression::new(LogRegConfig::default());
        model.fit(&std).unwrap();
        let tx = scaler.transform(test.features()).unwrap();
        let tstd = share::ml::dataset::Dataset::new(tx, test.targets().to_vec()).unwrap();
        model.accuracy(&tstd).unwrap()
    };

    let clean_acc = accuracy_of(&train);
    assert!(clean_acc > 0.9, "clean classifier accuracy {clean_acc}");

    // Perturb features at tau = 0.95 (mild noise).
    let mut rng = StdRng::seed_from_u64(203);
    let mut noisy = train.clone();
    let eps = epsilon_for_fidelity(0.95).unwrap();
    for (j, dom) in feature_domains().iter().enumerate() {
        let mech = LaplaceMechanism::new(eps, *dom).unwrap();
        for r in 0..noisy.len() {
            let v = noisy.features().row(r)[j];
            noisy.features_mut()[(r, j)] = mech.perturb(v, &mut rng);
        }
    }
    let noisy_acc = accuracy_of(&noisy);
    assert!(noisy_acc <= clean_acc + 0.02, "noise should not help");
    assert!(
        noisy_acc > 0.75,
        "moderate LDP should not destroy it: {noisy_acc}"
    );
}
