//! Cross-crate integration tests: the full Share pipeline from data
//! generation through equilibrium solving, LDP trading and settlement.

use rand::rngs::StdRng;
use rand::SeedableRng;
use share::datagen::ccpp::{feature_domains, generate, target_domain, CcppConfig};
use share::datagen::partition::{partition_by_quality, PartitionStrategy};
use share::datagen::quality::residual_quality;
use share::market::dynamics::{RoundOptions, TradingMarket, WeightUpdate};
use share::market::params::{BuyerParams, MarketParams};
use share::market::rounds::{run_rounds, warmup};
use share::market::solver::{solve, verify};
use share::valuation::monte_carlo::McOptions;

fn build_market(m: usize, rows_per_seller: usize, n_pieces: usize, seed: u64) -> TradingMarket {
    let corpus = generate(CcppConfig {
        rows: m * rows_per_seller,
        seed,
        ..CcppConfig::default()
    })
    .unwrap();
    let test = generate(CcppConfig {
        rows: 300,
        seed: seed + 1,
        ..CcppConfig::default()
    })
    .unwrap();
    let scores = residual_quality(&corpus).unwrap();
    let sellers =
        partition_by_quality(&corpus, &scores, m, PartitionStrategy::SortedBlocks).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let mut params = MarketParams::paper_defaults(m, &mut rng);
    params.buyer.n_pieces = n_pieces;
    TradingMarket::new(
        params,
        sellers,
        test,
        feature_domains().to_vec(),
        target_domain(),
    )
    .unwrap()
}

#[test]
fn paper_default_market_full_pipeline() {
    let mut market = build_market(10, 200, 200, 11);
    let opts = RoundOptions {
        weight_update: WeightUpdate::MonteCarlo(McOptions {
            permutations: 8,
            seed: 4,
            ..McOptions::default()
        }),
        ..RoundOptions::default()
    };

    // Warm-up then a real transaction.
    let shifts = warmup(&mut market, 3, opts).unwrap();
    assert_eq!(shifts.len(), 3);
    let report = market.run_round(opts).unwrap();

    // The transacted allocation is whole and complete.
    assert_eq!(report.chi.iter().sum::<usize>(), 200);
    // Every seller's ε matches her fidelity through Eq. 10.
    for (eps, tau) in report.epsilons.iter().zip(&report.solution.tau) {
        if eps.is_finite() {
            let back = share::ldp::fidelity::fidelity(*eps).unwrap();
            assert!((back - tau).abs() < 1e-9);
        }
    }
    // Ledger holds 4 validated records.
    assert_eq!(market.ledger().len(), 4);
    for rec in market.ledger().records() {
        assert!(rec.validate(200));
    }
}

#[test]
fn sne_holds_across_market_scales() {
    for &m in &[1usize, 2, 5, 20, 100, 500] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let params = MarketParams::paper_defaults(m, &mut rng);
        let sol = solve(&params).unwrap();
        let check = verify(&params, &sol).unwrap();
        assert!(
            check.is_equilibrium(1e-6 * (1.0 + sol.buyer_profit.abs())),
            "m = {m}: {check:?}"
        );
    }
}

#[test]
fn buyer_sequence_with_heterogeneous_demands() {
    let mut market = build_market(8, 300, 160, 21);
    let base = BuyerParams {
        n_pieces: 160,
        ..BuyerParams::paper_defaults()
    };
    let buyers = [
        base,
        BuyerParams { v: 0.6, ..base },
        BuyerParams { rho1: 2.0, ..base },
    ];
    let opts = RoundOptions {
        weight_update: WeightUpdate::None,
        ..RoundOptions::default()
    };
    let reports = run_rounds(&mut market, &buyers, opts).unwrap();
    assert_eq!(reports.len(), 3);
    // Lower demanded v lowers the product quality q^M = q^D·v (p^D is
    // nearly v-independent in deep markets: p^M* ≈ 1/√c₂ ∝ 1/v).
    assert!(reports[1].solution.q_m < reports[0].solution.q_m);
    // A more data-sensitive buyer pays a higher product price.
    assert!(reports[2].solution.p_m > reports[0].solution.p_m);
}

#[test]
fn ldp_noise_degrades_product_performance() {
    // Same market, one round with LDP and one without: the clean round's
    // model must explain at least as much variance.
    let opts_clean = RoundOptions {
        weight_update: WeightUpdate::None,
        apply_ldp: false,
        ..RoundOptions::default()
    };
    let opts_noisy = RoundOptions {
        weight_update: WeightUpdate::None,
        apply_ldp: true,
        ..RoundOptions::default()
    };
    let mut clean = build_market(6, 200, 120, 31);
    let mut noisy = build_market(6, 200, 120, 31);
    let r_clean = clean.run_round(opts_clean).unwrap();
    let r_noisy = noisy.run_round(opts_noisy).unwrap();
    assert!(
        r_clean.measured_performance >= r_noisy.measured_performance,
        "clean {} vs noisy {}",
        r_clean.measured_performance,
        r_noisy.measured_performance
    );
    assert!(r_clean.measured_performance > 0.8);
}

#[test]
fn shapley_weights_favor_better_data_over_rounds() {
    // Heterogeneous sellers via sorted blocks: seller 0 got the cleanest
    // data. After several Shapley rounds her weight should not collapse
    // below the floor while total normalization holds.
    let mut market = build_market(5, 240, 100, 41);
    let opts = RoundOptions {
        weight_update: WeightUpdate::MonteCarlo(McOptions {
            permutations: 10,
            seed: 6,
            ..McOptions::default()
        }),
        apply_ldp: false, // isolate data quality from privacy noise
        ..RoundOptions::default()
    };
    warmup(&mut market, 4, opts).unwrap();
    let w = &market.params().weights;
    assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(w.iter().all(|&x| x > 0.0));
}

#[test]
fn deviation_series_match_verifier() {
    // The Fig. 2 sweep peak and the Def. 4.2 verifier must tell the same
    // story: the equilibrium strategy maximizes each party's profit.
    use share::market::deviation::{argmax_by, sweep_p_d, sweep_p_m};
    let mut rng = StdRng::seed_from_u64(51);
    let params = MarketParams::paper_defaults(50, &mut rng);
    let sol = solve(&params).unwrap();

    let s_pm = sweep_p_m(&params, sol.p_m * 0.5, sol.p_m * 1.5, 101, &[0]).unwrap();
    let i = argmax_by(&s_pm, |p| p.buyer).unwrap();
    assert!((s_pm[i].x - sol.p_m).abs() < 0.02 * sol.p_m);

    let s_pd = sweep_p_d(&params, &sol, sol.p_d * 0.5, sol.p_d * 1.5, 101, &[0]).unwrap();
    let j = argmax_by(&s_pd, |p| p.broker).unwrap();
    assert!((s_pd[j].x - sol.p_d).abs() < 0.02 * sol.p_d);
}

#[test]
fn loss_model_switch_changes_stage3_only() {
    use share::market::params::LossModel;
    use share::market::stage3::{tau_direct, tau_mean_field};
    let mut rng = StdRng::seed_from_u64(61);
    let mut params = MarketParams::paper_defaults(30, &mut rng);
    let p_d = 0.02;
    let quad = tau_direct(&params, p_d).unwrap();
    params.loss_model = LossModel::LinearChi;
    let mf = tau_mean_field(&params, p_d).unwrap();
    // Different loss models produce different fidelity schedules.
    assert_ne!(quad, mf);
    // Both feasible.
    assert!(quad.iter().chain(&mf).all(|t| (0.0..=1.0).contains(t)));
}
