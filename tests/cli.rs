//! Integration tests for the `share_cli` binary itself: malformed input
//! must produce a clean one-line error and a non-zero exit code, never a
//! panic, and well-formed invocations must succeed.

use std::process::{Command, Output};

fn share_cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_share_cli"))
        .args(args)
        .output()
        .expect("run share_cli")
}

#[test]
fn malformed_numeric_args_fail_cleanly() {
    for args in [
        &["solve", "--m", "banana"][..],
        &["solve", "--seed", "-3"][..],
        &["sweep", "--param", "theta1", "--lo", "NaN"][..],
        &["sweep", "--param", "theta1", "--hi", "inf"][..],
        &["trade", "--rounds", "2.5"][..],
    ] {
        let out = share_cli(args);
        assert!(!out.status.success(), "{args:?} must exit non-zero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("error: "),
            "{args:?} must print a one-line error, got: {stderr}"
        );
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "{args:?} must not spray a backtrace: {stderr}"
        );
    }
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = share_cli(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("usage:"));
}

#[test]
fn request_without_server_fails_cleanly() {
    let out = share_cli(&["request", "--addr", "127.0.0.1:1", "--m", "5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: connect"), "{stderr}");
}

#[test]
fn malformed_fault_plans_fail_before_binding() {
    for plan in ["panic=2.0", "seed=x", "frobnicate=1", "panic"] {
        let out = share_cli(&["serve", "--fault-plan", plan]);
        assert!(!out.status.success(), "plan `{plan}` must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: --fault-plan"), "{stderr}");
    }
}

#[test]
fn solve_runs_end_to_end() {
    let out = share_cli(&["solve", "--m", "8", "--seed", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p^M*"), "{stdout}");
}
